//! Reproduction scorecard: a fast, self-contained pass/fail check of the
//! paper's key quantitative claims (the "shape criteria" of DESIGN.md),
//! printable in a few seconds. Run this first after any change.

use performa_core::prelude::*;
use performa_core::blowup::BlowupRegion;
use performa_dist::{fit, Exponential, Moments, TruncatedPowerTail};
use performa_experiments::{hyp2_cluster, params, tpt_cluster, tpt_cluster_with};

struct Scorecard {
    passed: usize,
    failed: usize,
}

impl Scorecard {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        if ok {
            self.passed += 1;
            println!("  [PASS] {name}: {detail}");
        } else {
            self.failed += 1;
            println!("  [FAIL] {name}: {detail}");
        }
    }
}

fn main() {
    let _obs = performa_experiments::init_obs();
    let mut s = Scorecard { passed: 0, failed: 0 };
    println!("# performa reproduction scorecard\n");

    // --- Eq. 3/4: blow-up thresholds ---
    let m = tpt_cluster(10, 0.5);
    let t = blowup::utilization_thresholds(&m);
    s.check(
        "thresholds at 21.7% / 60.9%",
        (t[0] - 0.2174).abs() < 5e-4 && (t[1] - 0.6087).abs() < 5e-4,
        format!("rho_2 = {:.4}, rho_1 = {:.4}", t[0], t[1]),
    );

    // --- Figure 1 regions ---
    let norm = |t_level: u32, rho: f64| {
        tpt_cluster(t_level, rho)
            .solve()
            .expect("stable")
            .normalized_mean_queue_length()
    };
    let insens = (norm(10, 0.15) / norm(1, 0.15) - 1.0).abs();
    s.check(
        "insensitive region (rho = 0.15)",
        insens < 0.05,
        format!("T=10 vs T=1 differ by {:.2}%", insens * 100.0),
    );
    let mid = norm(10, 0.45) / norm(1, 0.45);
    s.check(
        "intermediate region (rho = 0.45)",
        mid > 1.2 && mid < 20.0,
        format!("T=10 / T=1 = {mid:.2}"),
    );
    let deep = norm(10, 0.8) / norm(1, 0.8);
    s.check(
        "deep blow-up (rho = 0.8)",
        deep > 30.0,
        format!("T=10 / T=1 = {deep:.1}"),
    );

    // --- Figure 2 tail exponents ---
    let sol = tpt_cluster(9, 0.7).solve().expect("stable");
    let pmf = sol.queue_length_pmf_range(1_001);
    let slope = (pmf[800].ln() - pmf[80].ln()) / ((800.0f64).ln() - (80.0f64).ln());
    s.check(
        "power-law pmf slope near -beta_1 = -1.4 (rho = 0.7)",
        (-slope - 1.4).abs() < 0.4,
        format!("measured {slope:.2}"),
    );

    // --- Figure 4: HYP-2 matching ---
    let tpt = TruncatedPowerTail::with_mean(10, params::ALPHA, params::THETA, params::DOWN_MEAN)
        .expect("valid");
    let h = fit::hyp2_matching(&tpt).expect("feasible");
    let fit_err = (1..=3)
        .map(|k| (h.raw_moment(k) / tpt.raw_moment(k) - 1.0).abs())
        .fold(0.0, f64::max);
    s.check(
        "HYP-2 3-moment fit",
        fit_err < 1e-8,
        format!("max rel moment error {fit_err:.1e}"),
    );
    let h_norm = hyp2_cluster(2, params::DELTA, 10, 0.8)
        .solve()
        .expect("stable")
        .normalized_mean_queue_length();
    let t_norm = norm(10, 0.8);
    s.check(
        "HYP-2 matches TPT in the worst region",
        (h_norm / t_norm - 1.0).abs() < 0.05,
        format!("HYP-2 {h_norm:.1} vs TPT {t_norm:.1}"),
    );

    // --- Figure 5: stability bound ---
    let probe = tpt_cluster(10, 0.5).with_arrival_rate(1.8).expect("ok");
    let bound = blowup::stability_availability_bound(&probe);
    s.check(
        "Fig. 5 stability bound A > 0.3125",
        (bound - 0.3125).abs() < 1e-9,
        format!("{bound:.4}"),
    );

    // --- Figure 6: five thresholds for N = 5 ---
    let m5 = tpt_cluster_with(5, params::DELTA, 1, 0.5);
    let t5 = blowup::utilization_thresholds(&m5);
    s.check(
        "N = 5 has five ordered thresholds",
        t5.len() == 5 && t5.windows(2).all(|w| w[0] < w[1]),
        format!("{t5:.3?}"),
    );

    // --- Region classification ---
    let region = |lambda: f64| {
        blowup::region(&tpt_cluster(5, 0.5).with_arrival_rate(lambda).expect("ok"))
    };
    s.check(
        "region classification",
        region(0.5) == BlowupRegion::Insensitive
            && region(1.5) == BlowupRegion::Region(2)
            && region(3.0) == BlowupRegion::Region(1),
        "lambda = 0.5 / 1.5 / 3.0 -> Insensitive / Region(2) / Region(1)".into(),
    );

    // --- Load-dependent model bounds the plain model from above ---
    let plain = tpt_cluster(3, 0.4).solve().expect("stable").mean_queue_length();
    let ld = performa_core::LoadDependentCluster::new(tpt_cluster(3, 0.4))
        .solve()
        .expect("stable")
        .mean_queue_length();
    s.check(
        "load-independence is a lower bound",
        ld > plain && ld < plain + 2.0,
        format!("load-dep {ld:.3} vs load-indep {plain:.3}"),
    );

    // --- UP-shape insensitivity (Sect. 2.1) ---
    let erlang_up = ClusterModel::builder()
        .servers(2)
        .peak_rate(params::NU_P)
        .degradation(params::DELTA)
        .up(performa_dist::Erlang::with_mean(4, params::UP_MEAN).expect("valid"))
        .down(TruncatedPowerTail::with_mean(8, params::ALPHA, params::THETA, params::DOWN_MEAN)
            .expect("valid"))
        .utilization(0.7)
        .build()
        .expect("valid")
        .solve()
        .expect("stable")
        .mean_queue_length();
    let exp_up = ClusterModel::builder()
        .servers(2)
        .peak_rate(params::NU_P)
        .degradation(params::DELTA)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(TruncatedPowerTail::with_mean(8, params::ALPHA, params::THETA, params::DOWN_MEAN)
            .expect("valid"))
        .utilization(0.7)
        .build()
        .expect("valid")
        .solve()
        .expect("stable")
        .mean_queue_length();
    s.check(
        "UP-shape is a second-order effect",
        (erlang_up / exp_up - 1.0).abs() < 0.1,
        format!("Erlang-4 UP {erlang_up:.2} vs exp UP {exp_up:.2}"),
    );

    // --- Per-figure solver cost (sweep engine cost records) ----------
    // Informational, not pass/fail: coarse verification grids through
    // the sweep engine, summarised from the per-point `PointCost`
    // records — where the reproduction spends its solves.
    {
        use performa_core::{Axis, Scenario, SweepOptions, SweepPlan};
        println!("\n# solver cost per figure (coarse grids)\n");
        println!(
            "{:<26} {:>6} {:>10} {:>8}  strategy mix",
            "figure", "points", "time", "iters"
        );
        let figures = [
            (
                "fig1 (N=2, T=10, rho)",
                tpt_cluster(10, 0.5),
                SweepPlan::grid(0.1, 0.9, 8).into_values(),
            ),
            (
                "fig2 (N=2, T=9, rho)",
                tpt_cluster(9, 0.5),
                SweepPlan::grid(0.1, 0.7, 6).into_values(),
            ),
            (
                "fig6 (N=5, T=1, rho)",
                tpt_cluster_with(5, params::DELTA, 1, 0.5),
                SweepPlan::grid(0.1, 0.9, 6).into_values(),
            ),
        ];
        for (label, template, grid) in figures {
            let result = Scenario::new(template, Axis::Rho(grid))
                .compile()
                .with_options(SweepOptions::default().with_warm_start(true))
                .run_map(|sol| sol.normalized_mean_queue_length());
            let mut mix: std::collections::BTreeMap<&'static str, usize> =
                std::collections::BTreeMap::new();
            let mut time_s = 0.0f64;
            for p in result.points() {
                *mix.entry(p.cost.source.label()).or_insert(0) += 1;
                time_s += p.cost.elapsed.as_secs_f64();
            }
            let mix: Vec<String> = mix.iter().map(|(k, v)| format!("{k}:{v}")).collect();
            println!(
                "{label:<26} {:>6} {:>8.1}ms {:>8}  {}",
                result.points().len(),
                time_s * 1e3,
                result.stats().total_iterations,
                mix.join(" ")
            );
        }
    }

    println!("\n# {} passed, {} failed", s.passed, s.failed);
    if s.failed > 0 {
        std::process::exit(1);
    }
}
