//! Head-vs-tail reinsertion (paper Sect. 4, closing remark): for the
//! Resume and Restart recovery models, placing the interrupted task at the
//! *back* of the queue is better than placing it at the *front*.
//!
//! With exponential tasks the queue-length process is insensitive to the
//! Resume position (memorylessness), so the effect is probed with
//! hyperexponential task times, where an unlucky long task repeatedly
//! blocks the head of the queue. Strategies are compared **paired** on
//! common random seeds, which cancels most Monte-Carlo noise.
//!
//! CLI: `--cycles <n>` (default 30000), `--reps <n>` (default 10).

use performa_dist::{Exponential, HyperExponential, TruncatedPowerTail};
use performa_experiments::{arg_or, params, write_csv};
use performa_sim::{
    replicate, stats, ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let cycles: u64 = arg_or("--cycles", 30_000);
    let reps: u64 = arg_or("--reps", 10);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let rho = 0.6;
    let lambda = rho * 2.0 * params::NU_P * 0.9; // crash capacity ν̄ = N·νp·A

    let task = HyperExponential::balanced(1.0 / params::NU_P, 8.0).expect("scv > 1");
    let strategies = [
        FailureStrategy::ResumeFront,
        FailureStrategy::ResumeBack,
        FailureStrategy::RestartFront,
        FailureStrategy::RestartBack,
    ];

    println!("# Reinsertion comparison: HYP-2 tasks (scv 8), crash faults, TPT T=5, rho={rho}");
    println!("# {cycles} cycles/run, {reps} paired replications (common seeds)");

    // values[strategy][replication]
    let mut values = Vec::new();
    let mut sys_means = Vec::new();
    for s in strategies {
        let cfg = ClusterSimConfig {
            servers: params::N,
            nu_p: params::NU_P,
            delta: 0.0,
            up: Exponential::with_mean(params::UP_MEAN).expect("valid").into(),
            down: TruncatedPowerTail::with_mean(5, params::ALPHA, params::THETA, params::DOWN_MEAN)
                .expect("valid")
                .into(),
            task: task.clone().into(),
            lambda,
            strategy: s,
            stop: StopCriterion::Cycles(cycles),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg).expect("valid");
        // Common base seed across strategies => paired comparison.
        let q = replicate::run_replications(reps, 5000, threads, |seed| {
            sim.run(seed).mean_queue_length
        })
        .expect("replications");
        let st = replicate::run_replications(reps, 5000, threads, |seed| {
            sim.run(seed).mean_system_time
        })
        .expect("replications");
        values.push(q);
        sys_means.push(st);
    }

    println!(
        "# {:<14} {:>12} {:>12} {:>12}",
        "strategy", "E[Q]", "±CI", "E[S]"
    );
    let mut rows = Vec::new();
    for (i, s) in strategies.iter().enumerate() {
        let ci = stats::confidence_interval(&values[i]);
        let s_ci = stats::confidence_interval(&sys_means[i]);
        println!(
            "# {:<14} {:>12.4} {:>12.4} {:>12.4}",
            s.label(),
            ci.mean,
            ci.half_width,
            s_ci.mean
        );
        rows.push(vec![i as f64, ci.mean, ci.half_width, s_ci.mean]);
    }

    // Paired differences: front − back (positive = back is better).
    println!("#");
    println!("# paired differences (front − back), 95% CI:");
    for (label, fi, bi) in [("resume", 0usize, 1usize), ("restart", 2, 3)] {
        let diffs: Vec<f64> = values[fi]
            .iter()
            .zip(&values[bi])
            .map(|(f, b)| f - b)
            .collect();
        let ci = stats::confidence_interval(&diffs);
        println!(
            "#   {label:<8} ΔE[Q] = {:+.4} ± {:.4}  ({})",
            ci.mean,
            ci.half_width,
            if ci.lower() > 0.0 {
                "back significantly better"
            } else if ci.upper() < 0.0 {
                "front significantly better"
            } else {
                "not separable at this run length"
            }
        );
        rows.push(vec![10.0 + fi as f64, ci.mean, ci.half_width, f64::NAN]);
    }
    write_csv(
        "reinsertion_head_vs_tail.csv",
        "strategy_index,mean_q,ci_halfwidth,mean_system_time",
        &rows,
    );
}
