//! Figure 5: normalized mean queue length of the 2-node HYP-2 cluster
//! versus the availability A of the individual nodes, at fixed arrival
//! rate λ = 1.8 and fixed UP+DOWN cycle length 100.
//!
//! Expected shape (paper): vertical asymptote at the stability bound
//! A ≈ 31.25 %; monotone decrease toward A = 1; for any A < 1 the model
//! is at least in the intermediate blow-up region.
//!
//! The per-point HYP-2 re-fit makes this sweep inexpressible as a named
//! [`performa_core::Axis`], so the plan is compiled through
//! [`SweepPlan::from_builder`].

use performa_core::prelude::*;
use performa_experiments::{
    ascii_plot_logy, hyp2_cluster_with_availability, print_row, sweep_options_from_args, write_csv,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let t = 10; // HYP-2 matched to TPT T = 10 moments
    let lambda = 1.8;
    let cycle = 100.0;

    // The stability bound A > (λ/(N·νp) − δ)/(1−δ).
    let probe = hyp2_cluster_with_availability(t, cycle, 0.9, lambda);
    let a_min = blowup::stability_availability_bound(&probe);
    println!("# Figure 5: lambda = {lambda}, cycle = {cycle}, HYP-2 repair (TPT T={t} moments)");
    println!("# stability bound: A > {a_min:.4} (paper: ~31%)");
    let r1 = blowup::availability_interval(&probe, 1);
    let r2 = blowup::availability_interval(&probe, 2);
    println!("# blow-up region 1 (worst): A in {r1:?}");
    println!("# blow-up region 2:        A in {r2:?}");
    println!("# columns: A, normalized mean queue length");

    // Sweep from just above the bound to just below 1.
    let steps = 60;
    let grid: Vec<f64> = (0..=steps)
        .map(|i| a_min + 0.004 + (0.999 - a_min - 0.004) * f64::from(i) / f64::from(steps))
        .collect();
    let result = SweepPlan::from_builder("availability", grid, |a| {
        Ok(hyp2_cluster_with_availability(t, cycle, a, lambda))
    })
    .with_options(sweep_options_from_args())
    .run_map(|sol| sol.normalized_mean_queue_length());

    let mut rows = Vec::new();
    for point in result.points() {
        match &point.outcome {
            Ok(norm) => {
                let row = vec![point.x, *norm];
                print_row(&row);
                rows.push(row);
            }
            Err(e) => println!("# A = {:.4}: {e}", point.x),
        }
    }
    write_csv(
        "fig5_normalized_mean_vs_availability.csv",
        "availability,normalized_mean",
        &rows,
    );

    let xs: Vec<f64> = rows.iter().map(|r| r[0]).collect();
    let ys: Vec<f64> = rows.iter().map(|r| r[1]).collect();
    println!(
        "{}",
        ascii_plot_logy(
            "# Figure 5 (normalized mean vs availability, log-y):",
            &xs,
            &[("HYP-2 repair", ys)],
            64,
            14,
        )
    );
}
