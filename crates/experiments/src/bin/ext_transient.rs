//! Extension: transient performability of a fresh cluster — expected
//! capacity, interval availability and simultaneous-failure probabilities
//! over a finite horizon (uniformization on the server-state modulator).

use performa_core::prelude::*;
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::{params, print_row, write_csv};

fn main() {
    let _obs = performa_experiments::init_obs();
    let model = |t: u32| -> ClusterModel {
        ClusterModel::builder()
            .servers(params::N)
            .peak_rate(params::NU_P)
            .degradation(params::DELTA)
            .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
            .down(
                TruncatedPowerTail::with_mean(t, params::ALPHA, params::THETA, params::DOWN_MEAN)
                    .expect("valid"),
            )
            .utilization(0.5)
            .build()
            .expect("valid")
    };

    let exp_m = model(1);
    let tpt_m = model(8);
    let a_exp = TransientAnalysis::new(&exp_m).expect("valid");
    let a_tpt = TransientAnalysis::new(&tpt_m).expect("valid");

    println!("# Transient performability of a fresh 2-node cluster (all UP at t = 0)");
    println!("# columns: t, E[capacity](exp), E[capacity](tpt), P(>=1 down exp), P(>=1 down tpt), P(2 down tpt), interval avail (tpt)");
    let mut rows = Vec::new();
    for &t in &[
        0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 5000.0,
    ] {
        let row = vec![
            t,
            a_exp.expected_capacity(t),
            a_tpt.expected_capacity(t),
            a_exp.prob_at_least_down(1, t),
            a_tpt.prob_at_least_down(1, t),
            a_tpt.prob_at_least_down(2, t),
            a_tpt.interval_availability(t),
        ];
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "ext_transient_performability.csv",
        "t,cap_exp,cap_tpt,p1down_exp,p1down_tpt,p2down_tpt,interval_avail_tpt",
        &rows,
    );
    println!(
        "# long-run check: capacity -> {:.4}, P(>=1 down) -> {:.4}",
        tpt_m.capacity(),
        1.0 - 0.9f64 * 0.9
    );
}
