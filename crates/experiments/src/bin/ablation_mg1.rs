//! Ablation: why a renewal M/G/1 view is not enough.
//!
//! The paper (Sect. 2.2) mentions folding repair periods into occasional
//! long service times, inviting M/G/1-type analysis. This ablation shows
//! that an M/G/1 model driven only by the *marginal* service-time
//! variability misses the blow-up mechanism: the damage comes from the
//! *correlation* of service capacity over long repair episodes, which the
//! MMPP retains and an i.i.d. service sequence destroys.
//!
//! We compare, at equal utilization: the exact M/MMPP/1 solution, the
//! Pollaczek–Khinchine M/G/1 mean with the task-time scv (= 1), and P-K
//! with the scv inflated to the *completion-time* variability measured by
//! simulation.

use performa_core::prelude::*;
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::{params, print_row, write_csv};
use performa_qbd::{mg1, mm1};
use performa_sim::{ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion};

fn main() {
    let _obs = performa_experiments::init_obs();
    println!("# M/G/1 ablation: exact M/MMPP/1 vs Pollaczek-Khinchine approximations");
    println!("# TPT T=9 repair, delta=0.2, N=2");
    println!("# columns: rho, exact, PK(task scv=1) [=M/M/1], PK(completion scv), completion scv");

    // Measure the completion-time (service + interruptions) marginal
    // moments once by simulation at moderate load.
    let probe = ClusterModel::builder()
        .servers(params::N)
        .peak_rate(params::NU_P)
        .degradation(params::DELTA)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(TruncatedPowerTail::with_mean(9, params::ALPHA, params::THETA, params::DOWN_MEAN)
            .expect("valid"))
        .utilization(0.3)
        .build()
        .expect("valid");
    let cfg = ClusterSimConfig {
        servers: params::N,
        nu_p: params::NU_P,
        delta: params::DELTA,
        up: probe.up().clone(),
        down: probe.down().clone(),
        task: Exponential::with_mean(1.0 / params::NU_P).expect("valid").into(),
        lambda: probe.arrival_rate(),
        strategy: FailureStrategy::ResumeBack,
        stop: StopCriterion::Cycles(30_000),
        warmup_time: 2_000.0,
        resume_penalty: 0.0,
        detection_delay: None,
    };
    let sim = ClusterSim::new(cfg).expect("valid");
    // Completion time at low load ≈ service stretch including degraded
    // episodes; estimate scv from the pooled system-time sample at very
    // low utilization (queueing negligible).
    let r = sim.run(7);
    let samples = &r.system_time_sample;
    let n = samples.len() as f64;
    let mean: f64 = samples.iter().sum::<f64>() / n;
    let var: f64 = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let completion_scv = var / (mean * mean);
    println!("# measured completion-time scv at rho=0.3: {completion_scv:.3}");

    let mut rows = Vec::new();
    for i in 1..=9 {
        let rho = i as f64 / 10.0;
        let exact = probe
            .with_utilization(rho)
            .expect("positive")
            .solve()
            .expect("stable")
            .mean_queue_length();
        let pk_task = mg1::mean_queue_length(rho, 1.0).expect("stable");
        let pk_completion = mg1::mean_queue_length(rho, completion_scv).expect("stable");
        let row = vec![rho, exact, pk_task, pk_completion, completion_scv];
        print_row(&row);
        assert!((pk_task - mm1::mean_queue_length(rho).expect("stable")).abs() < 1e-12);
        rows.push(row);
    }
    write_csv(
        "ablation_mg1.csv",
        "rho,exact,pk_scv1,pk_completion_scv,completion_scv",
        &rows,
    );
    println!("# conclusion: neither i.i.d. approximation reproduces the blow-up structure");
}
