//! Extension: relaxing the paper's two idealized recovery assumptions.
//!
//! 1. *Ideal failure detection* (Sect. 2): we add a detection latency
//!    during which a crashed server's task is stranded and the server slot
//!    stays blocked, and sweep its mean.
//! 2. *Ideal (free) checkpointing* for Resume (Sect. 2): we charge a
//!    checkpoint-restore cost per resumption and find where Resume stops
//!    beating Restart — quantifying the paper's "the price for the former
//!    is the increased cost of checkpointing".
//!
//! CLI: `--cycles <n>` (default 20000), `--reps <n>` (default 6).

use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::{arg_or, params, write_csv};
use performa_sim::{
    replicate, ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion,
};

fn base(strategy: FailureStrategy, lambda: f64, cycles: u64) -> ClusterSimConfig {
    ClusterSimConfig {
        servers: params::N,
        nu_p: params::NU_P,
        delta: 0.0,
        up: Exponential::with_mean(params::UP_MEAN).expect("valid").into(),
        down: TruncatedPowerTail::with_mean(5, params::ALPHA, 0.5, params::DOWN_MEAN)
            .expect("valid")
            .into(),
        task: Exponential::with_mean(1.0 / params::NU_P).expect("valid").into(),
        lambda,
        strategy,
        stop: StopCriterion::Cycles(cycles),
        warmup_time: 2_000.0,
        resume_penalty: 0.0,
        detection_delay: None,
    }
}

fn main() {
    let _obs = performa_experiments::init_obs();
    let cycles: u64 = arg_or("--cycles", 20_000);
    let reps: u64 = arg_or("--reps", 6);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let lambda = 0.6 * 2.0 * params::NU_P * 0.9; // rho = 0.6 of crash capacity

    // --- Sweep 1: detection latency ---
    println!("# Recovery-assumption ablation 1: crash-detection latency (Resume-back)");
    println!("# columns: mean detection delay, E[Q] (±CI), E[S]");
    let mut rows = Vec::new();
    for &d in &[0.0, 0.5, 2.0, 5.0, 20.0] {
        let mut cfg = base(FailureStrategy::ResumeBack, lambda, cycles);
        if d > 0.0 {
            cfg.detection_delay = Some(Exponential::with_mean(d).expect("valid").into());
        }
        let sim = ClusterSim::new(cfg).expect("valid");
        let ci = replicate::replicated_ci(reps, 9000, threads, |s| {
            sim.run(s).mean_queue_length
        }).expect("replications");
        let st = sim.run(9000).mean_system_time;
        println!("# {d:>8.1} {:>12.4} (±{:.3}) {:>10.4}", ci.mean, ci.half_width, st);
        rows.push(vec![d, ci.mean, ci.half_width, st]);
    }
    write_csv(
        "ext_recovery_detection.csv",
        "detection_mean,mean_q,ci_halfwidth,mean_system_time",
        &rows,
    );

    // --- Sweep 2: checkpoint-restore cost ---
    println!("#");
    println!("# Recovery-assumption ablation 2: checkpoint-restore cost (vs Restart-back)");
    let restart = {
        let sim = ClusterSim::new(base(FailureStrategy::RestartBack, lambda, cycles))
            .expect("valid");
        replicate::replicated_ci(reps, 9100, threads, |s| sim.run(s).mean_queue_length)
            .expect("replications")
    };
    println!(
        "# restart baseline: E[Q] = {:.4} (±{:.3})",
        restart.mean, restart.half_width
    );
    println!("# columns: restore cost (work units), resume E[Q] (±CI)");
    let mut rows = Vec::new();
    let mut crossover: Option<f64> = None;
    for &c in &[0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut cfg = base(FailureStrategy::ResumeBack, lambda, cycles);
        cfg.resume_penalty = c;
        let sim = ClusterSim::new(cfg).expect("valid");
        let ci = replicate::replicated_ci(reps, 9100, threads, |s| {
            sim.run(s).mean_queue_length
        }).expect("replications");
        println!("# {c:>8.2} {:>12.4} (±{:.3})", ci.mean, ci.half_width);
        if crossover.is_none() && ci.mean > restart.mean {
            crossover = Some(c);
        }
        rows.push(vec![c, ci.mean, ci.half_width, restart.mean]);
    }
    write_csv(
        "ext_recovery_checkpoint_cost.csv",
        "restore_cost,resume_mean_q,ci_halfwidth,restart_mean_q",
        &rows,
    );
    match crossover {
        Some(c) => println!(
            "# Resume stops paying off near restore cost ≈ {c} work units \
             (mean task work = 1.0)"
        ),
        None => println!("# Resume beats Restart across the whole sweep"),
    }
}
