//! Ablation: lumped occupancy state space vs the Kronecker-sum state
//! space — exactness of the reduction and the size/time savings that make
//! the larger experiments feasible.

use std::time::Instant;

use performa_core::prelude::*;
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::params;
use performa_markov::aggregate;
use performa_qbd::Qbd;

fn main() {
    let _obs = performa_experiments::init_obs();
    println!("# Lumping ablation: state-space sizes, solve times, and agreement");
    println!(
        "# {:>3} {:>3} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "T", "N", "kron dim", "lump dim", "kron ms", "lump ms", "|ΔE[Q]|"
    );

    for (t, n) in [(3u32, 2usize), (5, 2), (5, 3), (2, 4)] {
        let model = ClusterModel::builder()
            .servers(n)
            .peak_rate(params::NU_P)
            .degradation(params::DELTA)
            .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
            .down(
                TruncatedPowerTail::with_mean(t, params::ALPHA, params::THETA, params::DOWN_MEAN)
                    .expect("valid"),
            )
            .utilization(0.7)
            .build()
            .expect("valid");
        let server = model.server_model().expect("valid");

        let t0 = Instant::now();
        let kron = aggregate::kronecker(&server, n).expect("valid");
        let kron_qbd =
            Qbd::m_mmpp1(model.arrival_rate(), kron.generator(), kron.rates()).expect("valid");
        let kron_mean = kron_qbd.solve().expect("stable").mean_queue_length();
        let kron_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let lump = aggregate::lumped(&server, n).expect("valid");
        let lump_qbd =
            Qbd::m_mmpp1(model.arrival_rate(), lump.generator(), lump.rates()).expect("valid");
        let lump_mean = lump_qbd.solve().expect("stable").mean_queue_length();
        let lump_ms = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "# {:>3} {:>3} {:>10} {:>10} {:>12.2} {:>12.2} {:>12.3e}",
            t,
            n,
            kron.dim(),
            lump.dim(),
            kron_ms,
            lump_ms,
            (kron_mean - lump_mean).abs()
        );
        assert!(
            (kron_mean - lump_mean).abs() < 1e-6 * kron_mean.max(1.0),
            "lumping must be exact"
        );
    }
    println!("# lumping is exact (identical E[Q]) and strictly cheaper");
}
