//! Figure 7: validation of the analytic model — exact analytic result vs
//! a simulation of the same (load-independent) model vs a simulation of
//! the physical multi-processor system, plus the M/M/1 reference.
//! TPT repair with T = 5 and θ = 0.5 (the paper limits T for simulation
//! stability).
//!
//! Expected shape (paper): the exact-model simulation lands on the
//! analytic curve; the multi-processor curve differs only at small queue
//! lengths (slightly larger mean, negligible at higher load).
//!
//! CLI: `--cycles <n>` (default 40000), `--reps <n>` (default 5).

use performa_core::prelude::*;
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::{arg_or, params, print_row, write_csv};
use performa_qbd::mm1;
use performa_sim::{
    replicate, ClusterSim, ClusterSimConfig, ExactModelConfig, ExactModelSim, FailureStrategy,
    StopCriterion,
};

fn model(rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(params::N)
        .peak_rate(params::NU_P)
        .degradation(params::DELTA)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(
            TruncatedPowerTail::with_mean(5, params::ALPHA, 0.5, params::DOWN_MEAN)
                .expect("valid"),
        )
        .utilization(rho)
        .build()
        .expect("valid")
}

fn main() {
    let _obs = performa_experiments::init_obs();
    let cycles: u64 = arg_or("--cycles", 40_000);
    let reps: u64 = arg_or("--reps", 5);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!("# Figure 7: analytic vs simulations, TPT T=5 theta=0.5, N=2, delta=0.2");
    println!("# {cycles} cycles/run, {reps} replications");
    println!("# columns: rho, analytic, sim exact model, sim multiprocessor, M/M/1");

    let mut rows = Vec::new();
    for i in 1..=9 {
        let rho = i as f64 / 10.0;
        let m = model(rho);
        let analytic = m.solve().expect("stable").mean_queue_length();

        let exact_cfg = ExactModelConfig {
            servers: params::N,
            nu_p: params::NU_P,
            delta: params::DELTA,
            up: m.up().clone(),
            down: m.down().clone(),
            lambda: m.arrival_rate(),
            stop: StopCriterion::Cycles(cycles),
            warmup_time: 2_000.0,
        };
        let exact_sim = ExactModelSim::new(exact_cfg).expect("valid");
        let exact_ci = replicate::replicated_ci(reps, 1000, threads, |seed| {
            exact_sim.run(seed).mean_queue_length
        }).expect("replications");

        let phys_cfg = ClusterSimConfig {
            servers: params::N,
            nu_p: params::NU_P,
            delta: params::DELTA,
            up: m.up().clone(),
            down: m.down().clone(),
            task: Exponential::with_mean(1.0 / params::NU_P).expect("valid").into(),
            lambda: m.arrival_rate(),
            strategy: FailureStrategy::ResumeBack, // irrelevant for delta > 0
            stop: StopCriterion::Cycles(cycles),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let phys_sim = ClusterSim::new(phys_cfg).expect("valid");
        let phys_ci = replicate::replicated_ci(reps, 2000, threads, |seed| {
            phys_sim.run(seed).mean_queue_length
        }).expect("replications");

        let row = vec![
            rho,
            analytic,
            exact_ci.mean,
            phys_ci.mean,
            mm1::mean_queue_length(rho).expect("stable"),
        ];
        print_row(&row);
        println!(
            "#   CI: exact ±{:.3}, multiprocessor ±{:.3}",
            exact_ci.half_width, phys_ci.half_width
        );
        rows.push(row);
    }
    write_csv(
        "fig7_analytic_vs_simulation.csv",
        "rho,analytic,sim_exact,sim_multiprocessor,mm1",
        &rows,
    );
}
