//! Extension (paper Sect. 2.4, last bullet): the analytic Discard model —
//! node failures remove the in-service task via a MAP service process —
//! compared against the Resume analytic model and the Discard simulator.
//!
//! CLI: `--cycles <n>` (default 30000).

use performa_core::prelude::*;
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_experiments::{arg_or, params, print_row, write_csv};
use performa_sim::{ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion};

fn model(rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(params::N)
        .peak_rate(params::NU_P)
        .degradation(0.0)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(
            TruncatedPowerTail::with_mean(5, params::ALPHA, 0.5, params::DOWN_MEAN)
                .expect("valid"),
        )
        .utilization(rho)
        .build()
        .expect("valid")
}

fn main() {
    let _obs = performa_experiments::init_obs();
    let cycles: u64 = arg_or("--cycles", 30_000);
    println!("# Analytic Discard (MAP service) vs Resume analytic vs Discard simulation");
    println!("# crash faults, TPT T=5 theta=0.5, N=2");
    println!("# columns: rho, resume analytic, discard analytic, discard sim, discard fraction");

    let mut rows = Vec::new();
    for i in 1..=8 {
        let rho = i as f64 / 10.0;
        let m = model(rho);
        let resume = m.solve().expect("stable").mean_queue_length();
        let discard_sol = CrashDiscardCluster::new(m.clone())
            .expect("crash model")
            .solve()
            .expect("stable");
        let discard = discard_sol.mean_queue_length();

        let cfg = ClusterSimConfig {
            servers: params::N,
            nu_p: params::NU_P,
            delta: 0.0,
            up: m.up().clone(),
            down: m.down().clone(),
            task: Exponential::with_mean(1.0 / params::NU_P).expect("valid").into(),
            lambda: m.arrival_rate(),
            strategy: FailureStrategy::Discard,
            stop: StopCriterion::Cycles(cycles),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg).expect("valid");
        let vals: Vec<f64> = (0..4).map(|s| sim.run(s).mean_queue_length).collect();
        let sim_mean = vals.iter().sum::<f64>() / vals.len() as f64;

        let row = vec![
            rho,
            resume,
            discard,
            sim_mean,
            discard_sol.discard_fraction(),
        ];
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "ext_discard_analytic.csv",
        "rho,resume_analytic,discard_analytic,discard_sim,discard_fraction",
        &rows,
    );
}
