//! Figure 4: normalized mean queue length with HYP-2 repair times whose
//! first three moments match the TPT distributions of Figure 1.
//!
//! Expected shape (paper): the same blow-up behaviour as Figure 1; in the
//! rightmost region the values closely match the TPT results, in the
//! intermediate region they are slightly lower.

use performa_core::prelude::*;
use performa_experiments::{
    base_thresholds, fit_error, hyp2_cluster, params, print_row, sweep_options_from_args,
    tpt_cluster, write_csv,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let ts: Vec<u32> = vec![1, 5, 9, 10];
    let grid = SweepPlan::grid(0.02, 0.98, 48)
        .refine_near(&base_thresholds())
        .into_values();

    println!("# Figure 4: HYP-2 repair matched to TPT first 3 moments, N=2, delta=0.2");
    for &t in &ts[1..] {
        println!("# HYP-2 fit for T = {t}: max relative moment error {:.2e}", fit_error(t));
    }
    println!("# columns: rho, norm-mean HYP2(T1..T10), then norm-mean TPT T=10 for comparison");

    let opts = sweep_options_from_args();
    let sweep = |template| {
        Scenario::new(template, Axis::Rho(grid.clone()))
            .compile()
            .with_options(opts.clone())
            .run_map(|sol: &performa_core::ClusterSolution| sol.normalized_mean_queue_length())
            .expect_values("stable")
    };
    // T = 1 is exactly exponential; the HYP-2 fit degenerates there, so
    // the first curve uses the TPT (= exponential) model directly. The
    // last curve is the reference: the true TPT T = 10 results.
    let mut curves: Vec<Vec<f64>> = vec![sweep(tpt_cluster(1, 0.5))];
    for &t in &ts[1..] {
        curves.push(sweep(hyp2_cluster(params::N, params::DELTA, t, 0.5)));
    }
    curves.push(sweep(tpt_cluster(10, 0.5)));

    let mut rows = Vec::new();
    for (i, &rho) in grid.iter().enumerate() {
        let mut row = vec![rho];
        for curve in &curves {
            row.push(curve[i]);
        }
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "fig4_hyp2_normalized_mean_vs_rho.csv",
        "rho,T1,T5,T9,T10,tpt_T10_reference",
        &rows,
    );
}
