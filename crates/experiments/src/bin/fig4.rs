//! Figure 4: normalized mean queue length with HYP-2 repair times whose
//! first three moments match the TPT distributions of Figure 1.
//!
//! Expected shape (paper): the same blow-up behaviour as Figure 1; in the
//! rightmost region the values closely match the TPT results, in the
//! intermediate region they are slightly lower.

use performa_experiments::{
    base_thresholds, fit_error, hyp2_cluster, params, print_row, rho_grid, tpt_cluster, write_csv,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let ts: Vec<u32> = vec![1, 5, 9, 10];
    let grid = rho_grid(0.02, 0.98, 48, &base_thresholds());

    println!("# Figure 4: HYP-2 repair matched to TPT first 3 moments, N=2, delta=0.2");
    for &t in &ts[1..] {
        println!("# HYP-2 fit for T = {t}: max relative moment error {:.2e}", fit_error(t));
    }
    println!("# columns: rho, norm-mean HYP2(T1..T10), then norm-mean TPT T=10 for comparison");

    let mut rows = Vec::new();
    for &rho in &grid {
        let mut row = vec![rho];
        for &t in &ts {
            // T = 1 is exactly exponential; hyp2 fit degenerates. Use the
            // TPT (=exponential) model directly there.
            let norm = if t == 1 {
                tpt_cluster(1, rho).solve().expect("stable")
            } else {
                hyp2_cluster(params::N, params::DELTA, t, rho)
                    .solve()
                    .expect("stable")
            }
            .normalized_mean_queue_length();
            row.push(norm);
        }
        // Reference column: the true TPT T = 10 curve.
        row.push(
            tpt_cluster(10, rho)
                .solve()
                .expect("stable")
                .normalized_mean_queue_length(),
        );
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "fig4_hyp2_normalized_mean_vs_rho.csv",
        "rho,T1,T5,T9,T10,tpt_T10_reference",
        &rows,
    );
}
