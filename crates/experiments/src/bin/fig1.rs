//! Figure 1: normalized mean queue length of the 2-node TPT-repair cluster
//! versus utilization, for truncation levels T = 1, 5, 9, 10.
//!
//! Expected shape (paper): the T = 1 (exponential) curve grows smoothly;
//! T = 9, 10 show blow-ups at ρ ≈ 21.7 % and ≈ 60.9 %, reaching ~100×
//! the M/M/1 mean in the rightmost region.

use performa_experiments::{ascii_plot_logy, base_thresholds, print_row, rho_grid, tpt_cluster, write_csv};

fn main() {
    let _obs = performa_experiments::init_obs();
    let ts: Vec<u32> = vec![1, 5, 9, 10];
    let thresholds = base_thresholds();
    let grid = rho_grid(0.02, 0.98, 48, &thresholds);

    println!(
        "# Figure 1: M/2-Burst/1, UP=90 DOWN=10, nu_p=2.0, delta=0.2, alpha=1.4, theta=0.2"
    );
    println!(
        "# blow-up thresholds: rho_2 = {:.4}, rho_1 = {:.4}",
        thresholds[0], thresholds[1]
    );
    println!(
        "# columns: rho, then normalized mean queue length for T = {:?}",
        ts
    );

    let mut rows = Vec::new();
    for &rho in &grid {
        let mut row = vec![rho];
        for &t in &ts {
            let sol = tpt_cluster(t, rho).solve().expect("stable for rho < 1");
            row.push(sol.normalized_mean_queue_length());
        }
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "fig1_normalized_mean_vs_rho.csv",
        "rho,T1,T5,T9,T10",
        &rows,
    );

    // Terminal rendition of the figure (log-y, like the paper's plot).
    let series: Vec<(&str, Vec<f64>)> = ts
        .iter()
        .enumerate()
        .map(|(c, t)| -> (&str, Vec<f64>) {
            let name: &str = match t {
                1 => "T=1",
                5 => "T=5",
                9 => "T=9",
                _ => "T=10",
            };
            (name, rows.iter().map(|r| r[c + 1]).collect())
        })
        .collect();
    println!(
        "{}",
        ascii_plot_logy(
            "# Figure 1 (normalized mean queue length vs rho, log-y):",
            &grid,
            &series,
            64,
            16,
        )
    );
}
