//! Figure 1: normalized mean queue length of the 2-node TPT-repair cluster
//! versus utilization, for truncation levels T = 1, 5, 9, 10.
//!
//! Expected shape (paper): the T = 1 (exponential) curve grows smoothly;
//! T = 9, 10 show blow-ups at ρ ≈ 21.7 % and ≈ 60.9 %, reaching ~100×
//! the M/M/1 mean in the rightmost region.
//!
//! Each T-curve is one [`SweepPlan`] over the shared ρ grid: the lumped
//! MMPP is built once per curve (modulator cache) and the points run on
//! the worker pool.

use performa_core::prelude::*;
use performa_experiments::{
    ascii_plot_logy, base_thresholds, exit_if_partial, print_row, sweep_options_from_args,
    tpt_cluster, write_csv,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let ts: Vec<u32> = vec![1, 5, 9, 10];
    // `--threads`, `--store PATH` (crash-safe resume), `--retry-failed`.
    let opts = sweep_options_from_args();
    let thresholds = base_thresholds();
    let grid = SweepPlan::grid(0.02, 0.98, 48)
        .refine_near(&thresholds)
        .into_values();

    println!(
        "# Figure 1: M/2-Burst/1, UP=90 DOWN=10, nu_p=2.0, delta=0.2, alpha=1.4, theta=0.2"
    );
    println!(
        "# blow-up thresholds: rho_2 = {:.4}, rho_1 = {:.4}",
        thresholds[0], thresholds[1]
    );
    println!(
        "# columns: rho, then normalized mean queue length for T = {:?}",
        ts
    );

    // One sweep per truncation level; every sweep shares the ρ grid.
    // A Ctrl-C (or an exhausted --deadline) exits 40 here with every
    // completed point flushed to --store, resumable with zero re-solves.
    let curves: Vec<Vec<f64>> = ts
        .iter()
        .map(|&t| {
            let result = Scenario::new(tpt_cluster(t, 0.5), Axis::Rho(grid.clone()))
                .compile()
                .with_options(opts.clone())
                .run_map(|sol| sol.normalized_mean_queue_length());
            exit_if_partial(result.stats());
            result.expect_values("stable for rho < 1")
        })
        .collect();

    let mut rows = Vec::new();
    for (i, &rho) in grid.iter().enumerate() {
        let mut row = vec![rho];
        for curve in &curves {
            row.push(curve[i]);
        }
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "fig1_normalized_mean_vs_rho.csv",
        "rho,T1,T5,T9,T10",
        &rows,
    );

    // Terminal rendition of the figure (log-y, like the paper's plot).
    let series: Vec<(&str, Vec<f64>)> = ts
        .iter()
        .enumerate()
        .map(|(c, t)| -> (&str, Vec<f64>) {
            let name: &str = match t {
                1 => "T=1",
                5 => "T=5",
                9 => "T=9",
                _ => "T=10",
            };
            (name, rows.iter().map(|r| r[c + 1]).collect())
        })
        .collect();
    println!(
        "{}",
        ascii_plot_logy(
            "# Figure 1 (normalized mean queue length vs rho, log-y):",
            &grid,
            &series,
            64,
            16,
        )
    );
}
