//! Figure 6: tail probabilities Pr(Q ≥ 500) for the 5-node cluster with
//! high-variance HYP-2 repair times — all five blow-up points visible.
//!
//! The 2-phase HYP-2 keeps the lumped modulator at C(7,2) = 21 states,
//! which is what makes N = 5 cheap (paper Sect. 3.2).

use performa_core::prelude::*;
use performa_experiments::{
    hyp2_cluster, params, print_row, sweep_options_from_args, write_csv,
};

fn main() {
    let _obs = performa_experiments::init_obs();
    let n = 5;
    let t = 10; // HYP-2 matched to TPT T = 10 moments
    let k = 500;

    let probe = hyp2_cluster(n, params::DELTA, t, 0.5);
    let thresholds = blowup::utilization_thresholds(&probe);
    println!("# Figure 6: N = {n}, HYP-2 repair (TPT T={t} moments), Pr(Q >= {k}) vs rho");
    println!("# blow-up thresholds rho_5..rho_1: {thresholds:?}");
    println!("# columns: rho, Pr(Q >= {k}) HYP-2, Pr(Q >= {k}) exponential repair");

    let grid = SweepPlan::grid(0.02, 0.98, 64)
        .refine_near(&thresholds)
        .into_values();
    let opts = sweep_options_from_args();
    let sweep = |template| {
        Scenario::new(template, Axis::Rho(grid.clone()))
            .compile()
            .with_options(opts.clone())
            .run_map(|sol: &performa_core::ClusterSolution| sol.at_least_probability(k))
            .expect_values("stable")
    };
    let heavy = sweep(probe);
    let light = sweep(performa_experiments::tpt_cluster_with(n, params::DELTA, 1, 0.5));

    let mut rows = Vec::new();
    for (i, &rho) in grid.iter().enumerate() {
        let row = vec![rho, heavy[i], light[i]];
        print_row(&row);
        rows.push(row);
    }
    write_csv(
        "fig6_tail_probability_n5.csv",
        "rho,hyp2,exponential",
        &rows,
    );
}
