//! Figure 9: the three failure-handling strategies with *hyperexponential*
//! task service times (variance 5.3), crash faults, TPT T = 10 repair.
//!
//! Expected shape (paper): the strategy ordering
//! Discard ≤ Resume ≤ Restart still holds, but the gaps grow
//! significantly compared to the exponential-task case (Fig. 8); the
//! blow-up behaviour remains visible for all three.
//!
//! CLI: `--cycles <n>` (default 20000), `--reps <n>` (default 10).

use performa_core::prelude::*;
use performa_dist::{fit, Exponential, Moments, TruncatedPowerTail};
use performa_experiments::{arg_or, params, write_csv};
use performa_sim::{
    replicate, ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion,
};

fn model(rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(params::N)
        .peak_rate(params::NU_P)
        .degradation(0.0)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(
            TruncatedPowerTail::with_mean(10, params::ALPHA, params::THETA, params::DOWN_MEAN)
                .expect("valid"),
        )
        .utilization(rho)
        .build()
        .expect("valid")
}

fn main() {
    let _obs = performa_experiments::init_obs();
    let cycles: u64 = arg_or("--cycles", 20_000);
    let reps: u64 = arg_or("--reps", 10);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    // HYP-2 task service times: mean 1/nu_p = 0.5, variance 5.3
    // (the paper's "var = 5.3" caption), fitted via the same 3-moment
    // machinery with the exponential third moment scaled accordingly.
    let mean = 1.0 / params::NU_P;
    let var: f64 = 5.3;
    let scv = var / (mean * mean);
    let task = performa_dist::HyperExponential::balanced(mean, scv).expect("scv > 1");
    println!(
        "# task distribution: HYP-2 mean {:.3}, variance {:.3} (scv {:.1})",
        task.mean(),
        task.variance(),
        task.scv()
    );
    // Also report the generic 3-moment route for documentation purposes.
    let _ = fit::hyp2_from_moments(mean, var + mean * mean, 6.0 * mean.powi(3) * scv * scv);

    let strategies = [
        FailureStrategy::Discard,
        FailureStrategy::ResumeBack,
        FailureStrategy::RestartBack,
    ];
    println!("# Figure 9: HYP-2 tasks, crash faults, TPT T=10, N=2");
    println!("# {cycles} cycles/run, {reps} replications");
    println!("# columns: rho, discard, resume, restart (mean queue length, with CIs)");

    let mut rows = Vec::new();
    for i in 1..=8 {
        let rho = i as f64 / 10.0;
        let m = model(rho);
        let mut row = vec![rho];
        let mut printed = format!("{rho:>6.2}");
        for (si, s) in strategies.iter().enumerate() {
            let cfg = ClusterSimConfig {
                servers: params::N,
                nu_p: params::NU_P,
                delta: 0.0,
                up: m.up().clone(),
                down: m.down().clone(),
                task: task.clone().into(),
                lambda: m.arrival_rate(),
                strategy: *s,
                stop: StopCriterion::Cycles(cycles),
                warmup_time: 2_000.0,
                resume_penalty: 0.0,
                detection_delay: None,
            };
            let sim = ClusterSim::new(cfg).expect("valid");
            let ci = replicate::replicated_ci(reps, 4000 + 100 * si as u64, threads, |seed| {
                sim.run(seed).mean_queue_length
            })
            .expect("replications");
            row.push(ci.mean);
            printed.push_str(&format!(" {:>12.4} (±{:.3})", ci.mean, ci.half_width));
        }
        println!("{printed}");
        rows.push(row);
    }
    write_csv(
        "fig9_strategies_hyp2_tasks.csv",
        "rho,discard,resume,restart",
        &rows,
    );
}
