//! Shared infrastructure for the per-figure experiment binaries.
//!
//! Every binary regenerates one table or figure of the DSN 2007 paper
//! (see DESIGN.md for the index), printing the plotted series as aligned
//! columns and writing a CSV under `results/`.

use std::io::Write as _;
use std::path::PathBuf;

use performa_core::{ClusterModel, StoreHandle, SweepOptions, SweepPlan};
use performa_dist::{fit, Dist, DistSpec, Exponential, HyperExponential, Moments, TruncatedPowerTail};

/// The paper's shared base parameters (Sect. 3, figure captions).
pub mod params {
    /// TPT tail exponent `α`.
    pub const ALPHA: f64 = 1.4;
    /// TPT geometric parameter `θ` (Figures 1–4, 8, 9).
    pub const THETA: f64 = 0.2;
    /// Mean UP duration (`ON = 90`).
    pub const UP_MEAN: f64 = 90.0;
    /// Mean DOWN duration (`OFF = 10`).
    pub const DOWN_MEAN: f64 = 10.0;
    /// Peak per-server service rate `ν_p`.
    pub const NU_P: f64 = 2.0;
    /// Degradation factor `δ` for the non-crash experiments.
    pub const DELTA: f64 = 0.2;
    /// Cluster size for Figures 1–5 and 7–9.
    pub const N: usize = 2;
}

/// The paper's repair-time spec at truncation `t`: a TPT with
/// `α = 1.4`, `θ = 0.2` normalized to the paper's MTTR of 10.
pub fn tpt_spec(t: u32) -> DistSpec {
    DistSpec::Tpt {
        truncation: t,
        alpha: params::ALPHA,
        theta: params::THETA,
        mean: params::DOWN_MEAN,
    }
}

/// Builds a paper-style cluster (exponential UP of mean 90, peak rate
/// `ν_p = 2`) with the repair distribution described by `spec`, at
/// utilization `rho`.
///
/// # Panics
///
/// Panics on invalid parameters — experiment binaries use fixed, valid
/// settings.
pub fn cluster_with_down_spec(n: usize, delta: f64, spec: &DistSpec, rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(n)
        .peak_rate(params::NU_P)
        .degradation(delta)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(spec.to_dist().expect("valid repair spec"))
        .utilization(rho)
        .build()
        .expect("paper parameters are valid")
}

/// Builds the paper's TPT-repair cluster model at utilization `rho`.
///
/// # Panics
///
/// Panics on invalid parameters — experiment binaries use fixed, valid
/// settings.
pub fn tpt_cluster(t: u32, rho: f64) -> ClusterModel {
    tpt_cluster_with(params::N, params::DELTA, t, rho)
}

/// TPT cluster with explicit size and degradation.
///
/// # Panics
///
/// See [`tpt_cluster`].
pub fn tpt_cluster_with(n: usize, delta: f64, t: u32, rho: f64) -> ClusterModel {
    cluster_with_down_spec(n, delta, &tpt_spec(t), rho)
}

/// The HYP-2 repair distribution moment-matched to the paper's TPT with
/// truncation `t` (Figure 4/5/6 construction).
///
/// # Panics
///
/// Panics if the fit is infeasible (never for `t ≥ 2` with the paper's
/// parameters).
pub fn hyp2_matched_to_tpt(t: u32) -> HyperExponential {
    let Ok(Dist::TruncatedPowerTail(tpt)) = tpt_spec(t).to_dist() else {
        unreachable!("tpt_spec builds a TPT")
    };
    fit::hyp2_matching(&tpt).expect("paper TPT moments are HYP-2 feasible")
}

/// Builds the HYP-2-repair cluster (3-moment matched to TPT `t`) at
/// utilization `rho`.
///
/// # Panics
///
/// See [`hyp2_matched_to_tpt`].
pub fn hyp2_cluster(n: usize, delta: f64, t: u32, rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(n)
        .peak_rate(params::NU_P)
        .degradation(delta)
        .up(Exponential::with_mean(params::UP_MEAN).expect("valid"))
        .down(hyp2_matched_to_tpt(t))
        .utilization(rho)
        .build()
        .expect("paper parameters are valid")
}

/// A HYP-2 cluster with a *rescaled* UP/DOWN pair: availability `a` with
/// the cycle length `UP+DOWN` kept constant (Figure 5's sweep).
///
/// # Panics
///
/// Panics on invalid parameters.
pub fn hyp2_cluster_with_availability(t: u32, cycle: f64, a: f64, lambda: f64) -> ClusterModel {
    let up_mean = a * cycle;
    let down_mean = (1.0 - a) * cycle;
    // Re-fit the HYP-2 to the TPT shape rescaled to the new mean: the
    // paper scales the repair-time distribution, preserving its relative
    // variability.
    let Ok(Dist::TruncatedPowerTail(tpt)) = tpt_spec(t).with_mean(down_mean).to_dist() else {
        unreachable!("tpt_spec builds a TPT")
    };
    let hyp = fit::hyp2_matching(&tpt).expect("feasible");
    ClusterModel::builder()
        .servers(params::N)
        .peak_rate(params::NU_P)
        .degradation(params::DELTA)
        .up(Exponential::with_mean(up_mean).expect("valid"))
        .down(hyp)
        .arrival_rate(lambda)
        .build()
        .expect("valid")
}

/// Observability session for experiment binaries: keep it alive for the
/// duration of `main` (see [`init_obs`]); dropping it flushes the sinks,
/// prints the `--profile` table to stderr and resets the recorder.
#[must_use = "bind to a variable so the trace covers the whole run"]
#[derive(Debug)]
pub struct ObsGuard {
    sinks: Vec<performa_obs::SinkId>,
    profile: bool,
}

/// Configures the global recorder from the binary's command line,
/// honouring the same flags as the `performa` CLI:
///
/// * `--trace-level L` — human-readable trace on stderr
///   (`off|error|warn|info|debug|trace`),
/// * `--trace-json PATH` — structured NDJSON trace (schema v1), at
///   `debug` verbosity unless `--trace-level` says otherwise,
/// * `--profile` — metric aggregation plus a summary table on exit.
///
/// # Panics
///
/// Panics on an unparseable level or unwritable trace path (experiment
/// binaries want loud failures).
pub fn init_obs() -> ObsGuard {
    let argv: Vec<String> = std::env::args().collect();
    let find = |key: &str| {
        argv.iter()
            .position(|a| a == key)
            .and_then(|i| argv.get(i + 1))
            .cloned()
    };
    let mut sinks = Vec::new();
    let profile = argv.iter().any(|a| a == "--profile");
    if profile {
        performa_obs::reset_metrics();
        performa_obs::set_metrics(true);
    }
    let mut level: Option<performa_obs::TraceLevel> = None;
    if let Some(spec) = find("--trace-level") {
        let parsed = spec.parse().expect("valid --trace-level");
        level = Some(parsed);
        if parsed != performa_obs::TraceLevel::Off {
            sinks.push(performa_obs::add_sink(std::sync::Arc::new(
                performa_obs::StderrSink::new(),
            )));
        }
    }
    if let Some(path) = find("--trace-json") {
        let sink = performa_obs::NdjsonSink::create(std::path::Path::new(&path))
            .expect("writable --trace-json path");
        sinks.push(performa_obs::add_sink(std::sync::Arc::new(sink)));
        if level.is_none() {
            level = Some(performa_obs::TraceLevel::Debug);
        }
    }
    if let Some(l) = level {
        performa_obs::set_level(l);
    }
    ObsGuard { sinks, profile }
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        performa_obs::flush_sinks();
        if self.profile {
            eprint!("{}", performa_obs::metrics_snapshot().profile_table());
            performa_obs::set_metrics(false);
            performa_obs::reset_metrics();
        }
        performa_obs::set_level(performa_obs::TraceLevel::Off);
        for id in self.sinks.drain(..) {
            performa_obs::remove_sink(id);
        }
    }
}

/// Returns `value` for `--key value` style CLI arguments, else the
/// default. Used by the simulation binaries to scale run length.
pub fn arg_or<T: std::str::FromStr>(key: &str, default: T) -> T {
    let args: Vec<String> = std::env::args().collect();
    for i in 0..args.len().saturating_sub(1) {
        if args[i] == key {
            if let Ok(v) = args[i + 1].parse() {
                return v;
            }
        }
    }
    default
}

/// Builds the [`SweepOptions`] shared by every figure binary from the
/// command line:
///
/// * `--threads N` — worker pool size (`0` = all cores),
/// * `--kernel-threads N` — linear-algebra kernel threads inside one
///   solve (`0` = all cores; default leaves the process setting, i.e.
///   `PERFORMA_THREADS` or serial),
/// * `--store PATH` — durable result store; cached points replay
///   bit-identically, so a re-run after a crash (or a parameter-subset
///   run) only solves what is missing,
/// * `--retry-failed` — re-attempt points whose stored record is a
///   persisted failure,
/// * `--deadline S` — whole-run wall-clock budget in seconds, split
///   into per-point deadlines by the cost-informed policy.
///
/// Every binary also gets the graceful-shutdown fabric: the first
/// Ctrl-C trips the process-wide [`CancelToken`], the sweep drains and
/// flushes the store, and [`exit_if_partial`] maps the interrupted run
/// to [`performa_core::EXIT_PARTIAL`]; a second Ctrl-C kills the
/// process.
///
/// Binaries that run several plans (one per curve) should `clone()` the
/// returned options so every curve shares the one open store handle.
///
/// # Panics
///
/// Panics if `--store` cannot be opened (experiment binaries want loud
/// failures) or `--deadline` is not a non-negative number of seconds;
/// a corrupt store's diagnostic names the damaged offset.
pub fn sweep_options_from_args() -> SweepOptions {
    performa_core::install_sigint();
    let mut opts = SweepOptions::default()
        .with_threads(arg_or("--threads", 0))
        .with_retry_failed(std::env::args().any(|a| a == "--retry-failed"))
        .with_cancel(performa_core::CancelToken::for_process());
    if std::env::args().any(|a| a == "--kernel-threads") {
        opts = opts.with_kernel_threads(arg_or("--kernel-threads", 0));
    }
    if std::env::args().any(|a| a == "--deadline") {
        let secs: f64 = arg_or("--deadline", -1.0);
        assert!(
            secs.is_finite() && secs >= 0.0,
            "--deadline must be a non-negative number of seconds"
        );
        opts.run_budget = Some(std::time::Duration::from_secs_f64(secs));
    }
    let argv: Vec<String> = std::env::args().collect();
    let store_path = argv
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| argv.get(i + 1))
        .cloned();
    if let Some(path) = store_path {
        let (handle, stats) =
            StoreHandle::open(std::path::Path::new(&path)).expect("usable --store");
        if stats.recovered_truncation {
            eprintln!(
                "store: truncated a damaged tail ({} byte(s)) of {path}",
                stats.truncated_bytes
            );
        }
        if stats.records > 0 {
            eprintln!("store: {path} holds {} cached point(s)", stats.records);
        }
        opts.store = Some(handle);
    }
    opts
}

/// Exits the process with [`performa_core::EXIT_PARTIAL`] if the sweep
/// behind `stats` was interrupted (Ctrl-C or `--deadline` exhaustion),
/// printing the partial tally and a resume hint to stderr first.
///
/// Figure binaries call this after each plan run, **before**
/// interpreting the values: an interrupted run's unsolved points would
/// otherwise panic the figure's `expect_values` with a misleading
/// diagnostic. Completed points are already flushed to `--store`, so
/// rerunning the same command resumes with zero re-solves.
pub fn exit_if_partial(stats: &performa_core::SweepStats) {
    if stats.interrupted() {
        eprintln!(
            "sweep interrupted: {} of {} points solved ({} cancelled, {} quarantined); \
             rerun the same command with --store to resume",
            stats.solved, stats.points, stats.cancelled, stats.quarantined
        );
        std::process::exit(i32::from(performa_core::EXIT_PARTIAL));
    }
}

/// Writes a CSV file under `results/`, creating the directory if needed.
///
/// # Panics
///
/// Panics on I/O failure (experiment binaries want loud failures).
pub fn write_csv(name: &str, header: &str, rows: &[Vec<f64>]) {
    let mut path = PathBuf::from("results");
    std::fs::create_dir_all(&path).expect("create results dir");
    path.push(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{header}").expect("write header");
    for row in rows {
        let line = row
            .iter()
            .map(|v| format!("{v:.10e}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(f, "{line}").expect("write row");
    }
    eprintln!("wrote results/{name}");
}

/// Prints one aligned numeric row to stdout.
pub fn print_row(cols: &[f64]) {
    let line = cols
        .iter()
        .map(|v| format!("{v:>14.6e}"))
        .collect::<Vec<_>>()
        .join(" ");
    println!("{line}");
}

/// Linearly spaced utilization grid on `[lo, hi]` with extra
/// refinement near the paper's blow-up thresholds.
///
/// Thin shim over [`performa_core::sweep::Grid`] — kept for the
/// historical call sites; new code should use
/// `SweepPlan::grid(lo, hi, steps).refine_near(thresholds)` directly.
pub fn rho_grid(lo: f64, hi: f64, steps: usize, refine_at: &[f64]) -> Vec<f64> {
    SweepPlan::grid(lo, hi, steps)
        .refine_near(refine_at)
        .into_values()
}

/// Convenience: the paper's blow-up thresholds for the base 2-server
/// setting (ρ₂ ≈ 0.217, ρ₁ ≈ 0.609).
pub fn base_thresholds() -> Vec<f64> {
    performa_core::blowup::utilization_thresholds(&tpt_cluster(1, 0.5))
}

/// Mean service time at full speed, `1/ν_p` — the paper's task-time mean.
pub fn task_mean() -> f64 {
    1.0 / params::NU_P
}


/// Renders a log-y ASCII chart of one or more series sharing the x grid.
///
/// Each series is drawn with its own glyph; points outside the y-range
/// are clamped to the border rows. Intended for quick visual checks of
/// the figure shapes straight in the terminal.
pub fn ascii_plot_logy(
    title: &str,
    xs: &[f64],
    series: &[(&str, Vec<f64>)],
    width: usize,
    height: usize,
) -> String {
    assert!(width >= 16 && height >= 6, "plot area too small");
    let glyphs = ['*', '+', 'o', 'x', '#', '@'];
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for (_, ys) in series {
        for &y in ys {
            if y.is_finite() && y > 0.0 {
                ymin = ymin.min(y);
                ymax = ymax.max(y);
            }
        }
    }
    if !ymin.is_finite() || ymin == ymax {
        return format!("{title}\n(no positive finite data to plot)\n");
    }
    let (ly0, ly1) = (ymin.log10(), ymax.log10());
    let (x0, x1) = (xs[0], *xs.last().expect("non-empty grid"));

    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, ys)) in series.iter().enumerate() {
        let g = glyphs[si % glyphs.len()];
        for (&x, &y) in xs.iter().zip(ys) {
            if !(y.is_finite() && y > 0.0) {
                continue;
            }
            let cx = ((x - x0) / (x1 - x0) * (width - 1) as f64).round() as usize;
            let fy = (y.log10() - ly0) / (ly1 - ly0);
            let cy = height - 1 - (fy * (height - 1) as f64).round() as usize;
            grid[cy.min(height - 1)][cx.min(width - 1)] = g;
        }
    }

    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{ymax:9.2e} |")
        } else if ri == height - 1 {
            format!("{ymin:9.2e} |")
        } else {
            format!("{:>9} |", "")
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!("{:>10} {:-<width$}\n", "+", "", width = width));
    out.push_str(&format!("{:>11}{:<w2$}{:>w2$}\n", x0, "", x1, w2 = width / 2));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(i, (name, _))| format!("{} {}", glyphs[i % glyphs.len()], name))
        .collect();
    out.push_str(&format!("  legend: {}\n", legend.join("   ")));
    out
}

/// Sanity helper used by several binaries: HYP-2 fit quality against the
/// source TPT (max relative moment error over m1..m3).
pub fn fit_error(t: u32) -> f64 {
    let tpt = TruncatedPowerTail::with_mean(t, params::ALPHA, params::THETA, params::DOWN_MEAN)
        .expect("valid");
    let h = hyp2_matched_to_tpt(t);
    (1..=3)
        .map(|k| ((h.raw_moment(k) / tpt.raw_moment(k)) - 1.0).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use performa_core::blowup;

    #[test]
    fn base_model_reproduces_paper_constants() {
        let m = tpt_cluster(10, 0.5);
        assert!((m.availability() - 0.9).abs() < 1e-12);
        assert!((m.capacity() - 3.68).abs() < 1e-12);
        let t = blowup::utilization_thresholds(&m);
        assert!((t[0] - 0.21739).abs() < 1e-4);
        assert!((t[1] - 0.60869).abs() < 1e-4);
    }

    #[test]
    fn hyp2_fit_is_tight() {
        for t in [5u32, 9, 10] {
            assert!(fit_error(t) < 1e-8, "T={t}: {}", fit_error(t));
        }
    }

    #[test]
    fn rho_grid_is_sorted_and_refined() {
        let g = rho_grid(0.05, 0.95, 10, &[0.6087]);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert!(g.iter().any(|&r| (r - 0.6137).abs() < 1e-9));
        assert!(g.len() > 11);
    }

    #[test]
    fn availability_sweep_model() {
        let m = hyp2_cluster_with_availability(9, 100.0, 0.9, 1.8);
        assert!((m.availability() - 0.9).abs() < 1e-9);
        assert!((m.mttf() + m.mttr() - 100.0).abs() < 1e-9);
        assert!((m.arrival_rate() - 1.8).abs() < 1e-12);
    }


    #[test]
    fn ascii_plot_renders_series() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64 / 20.0).collect();
        let a: Vec<f64> = xs.iter().map(|x| (10.0 * x).exp()).collect();
        let b: Vec<f64> = xs.iter().map(|_| 1.0).collect();
        let plot = ascii_plot_logy("demo", &xs, &[("up", a), ("flat", b)], 40, 10);
        assert!(plot.contains("demo"));
        assert!(plot.contains('*'));
        assert!(plot.contains('+'));
        assert!(plot.contains("legend"));
        // 10 grid rows + title + axis + labels + legend.
        assert!(plot.lines().count() >= 13);
    }

    #[test]
    fn ascii_plot_handles_empty_data() {
        let plot = ascii_plot_logy("empty", &[0.0, 1.0], &[("z", vec![0.0, 0.0])], 30, 8);
        assert!(plot.contains("no positive finite data"));
    }

    #[test]
    fn arg_or_returns_default_without_flag() {
        assert_eq!(arg_or("--not-set", 5u64), 5);
    }
}
