//! The finite dispatcher queue variant of paper Sect. 2.4
//! (ME/MMPP/1/K): tasks arriving at a full buffer are lost.
//!
//! The paper argues the qualitative blow-up picture is unchanged for large
//! buffers; this module lets that claim be checked quantitatively and adds
//! the task-loss probability as an extra performability metric.

use performa_linalg::Matrix;
use performa_qbd::{FiniteQbd, FiniteSolution, mm1};

use crate::model::ClusterModel;
use crate::{CoreError, Result};

/// A cluster with a finite dispatcher queue of `capacity` tasks
/// (including those in service).
#[derive(Debug, Clone)]
pub struct FiniteBufferCluster {
    model: ClusterModel,
    capacity: usize,
}

impl FiniteBufferCluster {
    /// Wraps a cluster model with a buffer bound.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if `capacity == 0`.
    pub fn new(model: ClusterModel, capacity: usize) -> Result<Self> {
        if capacity == 0 {
            return Err(CoreError::InvalidParameter {
                message: "buffer capacity must be at least 1".into(),
            });
        }
        Ok(FiniteBufferCluster { model, capacity })
    }

    /// The underlying model.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Buffer capacity `K`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Solves the finite chain exactly. Note that a finite buffer is
    /// *always* stable — even `λ > ν̄` is admitted (mass then concentrates
    /// near the full buffer).
    ///
    /// # Errors
    ///
    /// Solver failures from the QBD layer.
    pub fn solve(&self) -> Result<FiniteBufferSolution> {
        let mmpp = self.model.service_process()?;
        let dim = mmpp.dim();
        let lambda = self.model.arrival_rate();
        let li = Matrix::identity(dim) * lambda;
        let l = Matrix::diag(mmpp.rates().as_slice());
        let a1 = &(mmpp.generator() - &li) - &l;
        let b00 = mmpp.generator() - &li;
        let qbd = FiniteQbd::new(li, a1, l, b00, self.capacity)?;
        Ok(FiniteBufferSolution {
            model: self.model.clone(),
            inner: qbd.solve()?,
        })
    }
}

/// Stationary solution of a [`FiniteBufferCluster`].
#[derive(Debug, Clone)]
pub struct FiniteBufferSolution {
    model: ClusterModel,
    inner: FiniteSolution,
}

impl FiniteBufferSolution {
    /// Mean number of tasks in the system.
    pub fn mean_queue_length(&self) -> f64 {
        self.inner.mean_queue_length()
    }

    /// Mean queue length normalized by the (infinite-buffer) M/M/1 value.
    ///
    /// # Panics
    ///
    /// Returns NaN when the nominal utilization is ≥ 1 (the M/M/1
    /// reference does not exist there, although the finite-buffer chain
    /// itself is still well-defined).
    pub fn normalized_mean_queue_length(&self) -> f64 {
        match mm1::mean_queue_length(self.model.utilization()) {
            Ok(reference) => self.mean_queue_length() / reference,
            Err(_) => f64::NAN,
        }
    }

    /// Task loss probability: a Poisson arrival finds the buffer full
    /// (PASTA).
    pub fn loss_probability(&self) -> f64 {
        self.inner.blocking_probability()
    }

    /// Probability of exactly `n` tasks.
    pub fn queue_length_pmf(&self, n: usize) -> f64 {
        self.inner.level_probability(n)
    }

    /// Tail probability `Pr(Q > k)`.
    pub fn tail_probability(&self, k: usize) -> f64 {
        self.inner.tail_probability(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn model(t: u32, rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(t, 1.4, 0.2, 10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn zero_capacity_rejected() {
        assert!(FiniteBufferCluster::new(model(1, 0.5), 0).is_err());
    }

    #[test]
    fn large_buffer_approaches_infinite_model() {
        let m = model(3, 0.5);
        let infinite = m.solve().unwrap().mean_queue_length();
        let finite = FiniteBufferCluster::new(m, 4000)
            .unwrap()
            .solve()
            .unwrap();
        assert!(
            (finite.mean_queue_length() - infinite).abs() < 1e-3 * infinite,
            "{} vs {infinite}",
            finite.mean_queue_length()
        );
        assert!(finite.loss_probability() < 1e-4);
    }

    #[test]
    fn loss_grows_with_load_and_shrinks_with_capacity() {
        let mk = |rho: f64, k: usize| {
            FiniteBufferCluster::new(model(5, rho), k)
                .unwrap()
                .solve()
                .unwrap()
                .loss_probability()
        };
        assert!(mk(0.8, 50) > mk(0.4, 50));
        assert!(mk(0.8, 50) > mk(0.8, 200));
    }

    #[test]
    fn oversaturated_buffer_is_admitted() {
        // λ > ν̄ is fine with a finite buffer.
        let m = model(1, 0.5).with_arrival_rate(5.0).unwrap();
        let sol = FiniteBufferCluster::new(m, 30).unwrap().solve().unwrap();
        assert!(sol.loss_probability() > 0.2);
        let total: f64 = (0..=30).map(|n| sol.queue_length_pmf(n)).sum();
        assert!((total - 1.0).abs() < 1e-10);
    }

    #[test]
    fn heavy_tails_increase_loss_at_moderate_load() {
        // Inside the blow-up region the TPT repair inflates the buffer
        // occupancy, hence the loss, versus exponential repair.
        let loss = |t: u32| {
            FiniteBufferCluster::new(model(t, 0.7), 100)
                .unwrap()
                .solve()
                .unwrap()
                .loss_probability()
        };
        assert!(loss(9) > 10.0 * loss(1), "{} vs {}", loss(9), loss(1));
    }
}
