use performa_dist::{Dist, Moments};
use performa_markov::{aggregate, Mmpp, ServerModel};
use performa_qbd::{Qbd, SolveReport, SolverSupervisor, SupervisorOptions};

use crate::solution::ClusterSolution;
use crate::{CoreError, Result};

/// The paper's cluster model: `N` degradable servers behind a dispatcher
/// queue with Poisson task arrivals and exponential task service.
///
/// Construct through [`ClusterModel::builder`]; every parameter is
/// validated at [`ClusterBuilder::build`] time. The analytic pipeline is
///
/// 1. per-server UP/DOWN modulator (matrix-exponential periods),
/// 2. exact lumping of the `N`-server aggregate ([`aggregate::lumped`]),
/// 3. M/MMPP/1 QBD, solved matrix-geometrically.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    n: usize,
    nu_p: f64,
    delta: f64,
    up: Dist,
    down: Dist,
    lambda: f64,
}

impl ClusterModel {
    /// Starts a builder with the paper's defaults unset.
    pub fn builder() -> ClusterBuilder {
        ClusterBuilder::default()
    }

    /// Number of servers `N`.
    pub fn servers(&self) -> usize {
        self.n
    }

    /// Peak per-server service rate `ν_p`.
    pub fn peak_rate(&self) -> f64 {
        self.nu_p
    }

    /// Degradation factor `δ` (`0` = crash).
    pub fn degradation(&self) -> f64 {
        self.delta
    }

    /// UP-period distribution.
    pub fn up(&self) -> &Dist {
        &self.up
    }

    /// DOWN-period (repair) distribution.
    pub fn down(&self) -> &Dist {
        &self.down
    }

    /// Task arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.lambda
    }

    /// Mean time to failure (mean UP duration).
    pub fn mttf(&self) -> f64 {
        self.up.mean()
    }

    /// Mean time to repair (mean DOWN duration).
    pub fn mttr(&self) -> f64 {
        self.down.mean()
    }

    /// Per-node availability `A = MTTF/(MTTF + MTTR)` (paper Eq. 1).
    pub fn availability(&self) -> f64 {
        self.mttf() / (self.mttf() + self.mttr())
    }

    /// Long-run cluster capacity `ν̄ = N·ν_p·(A + δ·(1−A))`.
    pub fn capacity(&self) -> f64 {
        let a = self.availability();
        self.n as f64 * self.nu_p * (a + self.delta * (1.0 - a))
    }

    /// Utilization `ρ = λ/ν̄`.
    pub fn utilization(&self) -> f64 {
        self.lambda / self.capacity()
    }

    /// Returns a copy with the arrival rate replaced.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for a non-positive rate.
    pub fn with_arrival_rate(&self, lambda: f64) -> Result<Self> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(CoreError::InvalidParameter {
                message: format!("arrival rate {lambda} must be positive"),
            });
        }
        let mut m = self.clone();
        m.lambda = lambda;
        Ok(m)
    }

    /// Returns a copy with the arrival rate set so that the utilization is
    /// `rho`.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] unless `0 < rho`.
    pub fn with_utilization(&self, rho: f64) -> Result<Self> {
        if !(rho.is_finite() && rho > 0.0) {
            return Err(CoreError::InvalidParameter {
                message: format!("utilization {rho} must be positive"),
            });
        }
        self.with_arrival_rate(rho * self.capacity())
    }

    /// Returns a copy with the per-node availability set to `a` by a
    /// **cycle-preserving rescale**: both period distributions keep
    /// their family and shape (SCV, tail exponent, stage structure) and
    /// only their means move, to `MTTF' = a·c` and `MTTR' = (1−a)·c`
    /// where `c = MTTF + MTTR` is the original failure/repair cycle
    /// length. The arrival rate is left untouched, so sweeping `a`
    /// downward at fixed λ walks the model into the instability
    /// region of the paper's Fig. 5 (`A* = 0.3125` for the base
    /// cluster at λ = 1.8).
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] unless `0 < a < 1`;
    /// [`CoreError::Dist`] if a rescaled period leaves its family's
    /// domain.
    pub fn with_availability(&self, a: f64) -> Result<Self> {
        if !(a.is_finite() && a > 0.0 && a < 1.0) {
            return Err(CoreError::InvalidParameter {
                message: format!("availability {a} must lie in (0, 1)"),
            });
        }
        let cycle = self.mttf() + self.mttr();
        let mut m = self.clone();
        m.up = self.up.with_mean(a * cycle)?;
        m.down = self.down.with_mean((1.0 - a) * cycle)?;
        Ok(m)
    }

    /// The per-server UP/DOWN modulator used by the aggregation step.
    ///
    /// # Errors
    ///
    /// [`CoreError::Markov`] if the distributions cannot modulate a CTMC
    /// (never for the phase-type families enforced by the builder).
    pub fn server_model(&self) -> Result<ServerModel> {
        let up = self
            .up
            .to_matrix_exp()
            .expect("builder enforces phase-type UP");
        let down = self
            .down
            .to_matrix_exp()
            .expect("builder enforces phase-type DOWN");
        Ok(ServerModel::new(up, down, self.nu_p, self.delta)?)
    }

    /// The aggregated `N`-server service MMPP `⟨Q_N, L_N⟩`, built on the
    /// reduced occupancy state space.
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterModel::server_model`] errors.
    pub fn service_process(&self) -> Result<Mmpp> {
        Ok(aggregate::lumped(&self.server_model()?, self.n)?)
    }

    /// The aggregated service MMPP built by plain Kronecker sums
    /// (exponential state space; for validation and ablation only).
    ///
    /// # Errors
    ///
    /// Propagates [`ClusterModel::server_model`] errors.
    pub fn service_process_kronecker(&self) -> Result<Mmpp> {
        Ok(aggregate::kronecker(&self.server_model()?, self.n)?)
    }

    /// Assembles the M/MMPP/1 QBD.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the layers below.
    pub fn to_qbd(&self) -> Result<Qbd> {
        let mmpp = self.service_process()?;
        Ok(Qbd::m_mmpp1(
            self.lambda,
            mmpp.generator(),
            mmpp.rates(),
        )?)
    }

    /// Solves the model exactly.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unstable`] when `λ ≥ ν̄`; otherwise solver failures
    /// from the QBD layer.
    pub fn solve(&self) -> Result<ClusterSolution> {
        if self.lambda >= self.capacity() {
            return Err(CoreError::Unstable {
                lambda: self.lambda,
                capacity: self.capacity(),
            });
        }
        let qbd = self.to_qbd()?;
        let sol = qbd.solve()?;
        Ok(ClusterSolution::new(self.clone(), sol))
    }

    /// Solves the model through the resilient [`SolverSupervisor`]:
    /// a fallback chain of G-matrix strategies with numerical watchdogs,
    /// reported tolerance relaxation and optional wall-clock deadline.
    ///
    /// Returns the solution together with a [`SolveReport`] describing
    /// which strategy succeeded, how hard it had to work, and whether
    /// the result is degraded (fallback taken or tolerance relaxed).
    ///
    /// # Errors
    ///
    /// [`CoreError::Unstable`] when `λ ≥ ν̄`; otherwise supervisor
    /// failures from the QBD layer (exhausted chain, deadline, invalid
    /// supervisor options).
    pub fn solve_supervised(
        &self,
        options: SupervisorOptions,
    ) -> Result<(ClusterSolution, SolveReport)> {
        let _span = performa_obs::span_with(
            "core.solve",
            vec![
                ("servers", self.n.into()),
                ("lambda", self.lambda.into()),
                ("rho", (self.lambda / self.capacity()).into()),
            ],
        );
        if self.lambda >= self.capacity() {
            performa_obs::event(
                performa_obs::TraceLevel::Error,
                "core.unstable",
                vec![
                    ("lambda", self.lambda.into()),
                    ("capacity", self.capacity().into()),
                ],
            );
            return Err(CoreError::Unstable {
                lambda: self.lambda,
                capacity: self.capacity(),
            });
        }
        let qbd = self.to_qbd()?;
        let (sol, report) = SolverSupervisor::with_options(qbd, options).solve()?;
        performa_obs::event(
            performa_obs::TraceLevel::Info,
            "core.solved",
            vec![
                ("strategy", report.strategy.name().into()),
                ("degraded", report.degraded.into()),
                ("residual", report.residual.into()),
            ],
        );
        Ok((ClusterSolution::new(self.clone(), sol), report))
    }
}

/// Builder for [`ClusterModel`] (see the crate-level example).
#[derive(Debug, Clone, Default)]
pub struct ClusterBuilder {
    n: Option<usize>,
    nu_p: Option<f64>,
    delta: Option<f64>,
    up: Option<Dist>,
    down: Option<Dist>,
    lambda: Option<f64>,
    rho: Option<f64>,
}

impl ClusterBuilder {
    /// Sets the number of servers `N ≥ 1`.
    pub fn servers(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Sets the peak per-server service rate `ν_p > 0`.
    pub fn peak_rate(mut self, nu_p: f64) -> Self {
        self.nu_p = Some(nu_p);
        self
    }

    /// Sets the degradation factor `δ ∈ [0, 1]` (`0` = crash failure).
    pub fn degradation(mut self, delta: f64) -> Self {
        self.delta = Some(delta);
        self
    }

    /// Sets the UP-period distribution (must be phase-type).
    pub fn up(mut self, up: impl Into<Dist>) -> Self {
        self.up = Some(up.into());
        self
    }

    /// Sets the DOWN-period (repair) distribution (must be phase-type).
    pub fn down(mut self, down: impl Into<Dist>) -> Self {
        self.down = Some(down.into());
        self
    }

    /// Sets the Poisson task arrival rate `λ` directly. Mutually exclusive
    /// with [`ClusterBuilder::utilization`].
    pub fn arrival_rate(mut self, lambda: f64) -> Self {
        self.lambda = Some(lambda);
        self
    }

    /// Sets the target utilization `ρ = λ/ν̄`; the arrival rate is derived
    /// from the capacity at build time. Mutually exclusive with
    /// [`ClusterBuilder::arrival_rate`].
    pub fn utilization(mut self, rho: f64) -> Self {
        self.rho = Some(rho);
        self
    }

    /// Validates and builds the model.
    ///
    /// # Errors
    ///
    /// * [`CoreError::MissingComponent`] when a required field is unset.
    /// * [`CoreError::InvalidParameter`] for out-of-domain values, a
    ///   non-phase-type period distribution, or when both `arrival_rate`
    ///   and `utilization` were supplied.
    pub fn build(self) -> Result<ClusterModel> {
        let n = self.n.ok_or(CoreError::MissingComponent {
            name: "server count",
        })?;
        if n == 0 {
            return Err(CoreError::InvalidParameter {
                message: "server count must be at least 1".into(),
            });
        }
        let nu_p = self.nu_p.ok_or(CoreError::MissingComponent {
            name: "peak service rate",
        })?;
        if !(nu_p.is_finite() && nu_p > 0.0) {
            return Err(CoreError::InvalidParameter {
                message: format!("peak service rate {nu_p} must be positive"),
            });
        }
        let delta = self.delta.unwrap_or(0.0);
        if !(delta.is_finite() && (0.0..=1.0).contains(&delta)) {
            return Err(CoreError::InvalidParameter {
                message: format!("degradation factor {delta} must lie in [0, 1]"),
            });
        }
        let up = self.up.ok_or(CoreError::MissingComponent {
            name: "up distribution",
        })?;
        let down = self.down.ok_or(CoreError::MissingComponent {
            name: "down distribution",
        })?;
        for (name, d) in [("up", &up), ("down", &down)] {
            match d.to_matrix_exp() {
                Some(me) if me.is_phase_type() => {}
                _ => {
                    return Err(CoreError::InvalidParameter {
                        message: format!(
                            "{name} distribution ({}) must be phase-type for the analytic \
                             model; use the simulator for general distributions",
                            d.family()
                        ),
                    })
                }
            }
        }

        let mut model = ClusterModel {
            n,
            nu_p,
            delta,
            up,
            down,
            lambda: 1.0, // provisional; replaced below
        };
        match (self.lambda, self.rho) {
            (Some(_), Some(_)) => {
                return Err(CoreError::InvalidParameter {
                    message: "set either arrival_rate or utilization, not both".into(),
                })
            }
            (Some(l), None) => {
                model = model.with_arrival_rate(l)?;
            }
            (None, Some(r)) => {
                model = model.with_utilization(r)?;
            }
            (None, None) => {
                return Err(CoreError::MissingComponent {
                    name: "arrival rate (or utilization)",
                })
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use performa_dist::{Exponential, Moments, Pareto, TruncatedPowerTail};

    fn paper_model(rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn derived_quantities_match_paper() {
        let m = paper_model(0.5);
        assert!((m.availability() - 0.9).abs() < 1e-12);
        assert!((m.capacity() - 3.68).abs() < 1e-12);
        assert!((m.utilization() - 0.5).abs() < 1e-12);
        assert!((m.arrival_rate() - 1.84).abs() < 1e-12);
        assert_eq!(m.servers(), 2);
        assert_eq!(m.peak_rate(), 2.0);
        assert_eq!(m.degradation(), 0.2);
    }

    #[test]
    fn with_availability_pins_fig5_instability_at_a_star() {
        // Fig. 5 base cluster at λ = 1.8: capacity ν̄ = 4·(A + 0.2(1−A))
        // meets λ exactly at A* = (λ/(N·ν_p) − δ)/(1 − δ) = 0.3125.
        let base = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0).unwrap())
            .arrival_rate(1.8)
            .build()
            .unwrap();
        let cycle = base.mttf() + base.mttr();

        let critical = base.with_availability(0.3125).unwrap();
        assert!((critical.capacity() - 1.8).abs() < 1e-12);
        assert!((critical.availability() - 0.3125).abs() < 1e-12);
        // Cycle-preserving: both periods moved, their sum did not.
        assert!((critical.mttf() + critical.mttr() - cycle).abs() < 1e-9);
        // Shape-preserving: the repair tail keeps its SCV.
        assert!((critical.down().scv() - base.down().scv()).abs() < 1e-9);

        // Below A* the model is unstable at this λ; comfortably above it
        // the model solves.
        assert!(matches!(
            base.with_availability(0.31).unwrap().solve(),
            Err(CoreError::Unstable { .. })
        ));
        assert!(base.with_availability(0.35).unwrap().solve().is_ok());

        // Domain validation.
        assert!(base.with_availability(0.0).is_err());
        assert!(base.with_availability(1.0).is_err());
        assert!(base.with_availability(f64::NAN).is_err());
    }

    #[test]
    fn builder_validation() {
        let up = Exponential::with_mean(90.0).unwrap();
        let down = Exponential::with_mean(10.0).unwrap();

        // Missing pieces.
        assert!(matches!(
            ClusterModel::builder().build(),
            Err(CoreError::MissingComponent { .. })
        ));
        assert!(ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .up(up)
            .down(down)
            .build()
            .is_err()); // no load specified

        // Bad values.
        assert!(ClusterModel::builder()
            .servers(0)
            .peak_rate(2.0)
            .up(up)
            .down(down)
            .utilization(0.5)
            .build()
            .is_err());
        assert!(ClusterModel::builder()
            .servers(2)
            .peak_rate(-2.0)
            .up(up)
            .down(down)
            .utilization(0.5)
            .build()
            .is_err());
        assert!(ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(1.5)
            .up(up)
            .down(down)
            .utilization(0.5)
            .build()
            .is_err());

        // Both load specs.
        assert!(ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .up(up)
            .down(down)
            .arrival_rate(1.0)
            .utilization(0.5)
            .build()
            .is_err());

        // Non-phase-type distribution rejected for the analytic model.
        assert!(ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .up(up)
            .down(Pareto::with_mean(1.4, 10.0).unwrap())
            .utilization(0.5)
            .build()
            .is_err());
    }

    #[test]
    fn default_degradation_is_crash() {
        let m = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        assert_eq!(m.degradation(), 0.0);
        assert!((m.capacity() - 3.6).abs() < 1e-12);
    }

    #[test]
    fn unstable_load_rejected_at_solve() {
        let m = paper_model(0.5).with_arrival_rate(5.0).unwrap();
        assert!(matches!(m.solve(), Err(CoreError::Unstable { .. })));
    }

    #[test]
    fn exponential_repair_solution_is_modest() {
        let sol = paper_model(0.5).solve().unwrap();
        // With exponential repairs the normalized mean stays small.
        let norm = sol.normalized_mean_queue_length();
        assert!(norm > 1.0 && norm < 10.0, "normalized mean {norm}");
    }

    #[test]
    fn service_process_dimensions() {
        let tpt = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        // 11 phases/server: lumped pairs = C(12, 2) = 66 vs 121 Kronecker.
        assert_eq!(tpt.service_process().unwrap().dim(), 66);
        assert_eq!(tpt.service_process_kronecker().unwrap().dim(), 121);
    }

    #[test]
    fn supervised_solve_matches_plain_solve() {
        let m = paper_model(0.5);
        let plain = m.solve().unwrap();
        let (sup, report) = m.solve_supervised(SupervisorOptions::default()).unwrap();
        assert!((plain.mean_queue_length() - sup.mean_queue_length()).abs() < 1e-9);
        assert!(!report.degraded);
        assert!(report.residual.is_finite() && report.residual < 1e-8);
    }

    #[test]
    fn supervised_solve_rejects_unstable_load() {
        let m = paper_model(0.5).with_arrival_rate(5.0).unwrap();
        assert!(matches!(
            m.solve_supervised(SupervisorOptions::default()),
            Err(CoreError::Unstable { .. })
        ));
    }

    #[test]
    fn with_utilization_roundtrip() {
        let m = paper_model(0.3);
        let m2 = m.with_utilization(0.7).unwrap();
        assert!((m2.utilization() - 0.7).abs() < 1e-12);
        assert!(m.with_utilization(-0.5).is_err());
        assert!(m.with_arrival_rate(f64::NAN).is_err());
    }
}
