//! The cluster ↔ teletraffic duality of paper Sect. 2.3.
//!
//! The M/MMPP/1 cluster queue is, after renaming, the *N-Burst* MMPP/M/1
//! traffic model of Schwefel & Lipsky: servers become ON/OFF traffic
//! sources, UP periods become ON periods, availability becomes the
//! complement of the burst parameter. This module computes the dual
//! parameter set and renders the paper's comparison table
//! programmatically (experiment `table1`).

use performa_markov::OnOffSource;

use crate::model::ClusterModel;
use crate::Result;

/// Parameters of the N-Burst traffic model dual to a cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct TelcoParams {
    /// Number of ON/OFF sources (= number of servers).
    pub sources: usize,
    /// Peak rate `λ_p` during ON (= service rate during UP `ν_p`).
    pub peak_rate: f64,
    /// Burst parameter `b` = fraction of time OFF (= `1 − A`).
    pub burstiness: f64,
    /// Mean ON duration (= MTTF).
    pub mean_on: f64,
    /// Mean OFF duration (= MTTR).
    pub mean_off: f64,
    /// Aggregate mean arrival rate `λ = N·λ_p·(1−b)` (= `ν̄` for crash
    /// faults, δ = 0).
    pub aggregate_rate: f64,
}

/// Computes the dual N-Burst parameters of a cluster model.
pub fn dual_params(model: &ClusterModel) -> TelcoParams {
    let a = model.availability();
    TelcoParams {
        sources: model.servers(),
        peak_rate: model.peak_rate(),
        burstiness: 1.0 - a,
        mean_on: model.mttf(),
        mean_off: model.mttr(),
        aggregate_rate: model.servers() as f64 * model.peak_rate() * a,
    }
}

/// Builds the dual [`OnOffSource`] whose `N`-fold aggregate is the
/// MMPP/M/1 arrival process corresponding to the cluster's service
/// process (crash-fault view).
///
/// # Errors
///
/// Propagates construction errors from the Markov layer.
pub fn dual_source(model: &ClusterModel) -> Result<OnOffSource> {
    let up = model
        .up()
        .to_matrix_exp()
        .expect("cluster models enforce phase-type periods");
    let down = model
        .down()
        .to_matrix_exp()
        .expect("cluster models enforce phase-type periods");
    Ok(OnOffSource::new(up, down, model.peak_rate())?)
}

/// One row of the paper's Sect. 2.3 comparison table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DualityRow {
    /// Quantity name.
    pub quantity: &'static str,
    /// Value/formula on the cluster side.
    pub cluster: String,
    /// Value/formula on the telco side.
    pub telco: String,
}

/// Renders the paper's cluster-vs-telco comparison table for a concrete
/// model (numbers substituted).
pub fn duality_table(model: &ClusterModel) -> Vec<DualityRow> {
    let p = dual_params(model);
    vec![
        DualityRow {
            quantity: "queueing model",
            cluster: "M/MMPP/1".into(),
            telco: "MMPP/M/1".into(),
        },
        DualityRow {
            quantity: "entities",
            cluster: format!("{} servers", model.servers()),
            telco: format!("{} sources", p.sources),
        },
        DualityRow {
            quantity: "peak rate",
            cluster: format!("service during UP nu_p = {}", model.peak_rate()),
            telco: format!("arrival during ON lambda_p = {}", p.peak_rate),
        },
        DualityRow {
            quantity: "duty cycle",
            cluster: format!("availability A = {:.4}", model.availability()),
            telco: format!("burstiness b = {:.4} (A = 1 - b)", p.burstiness),
        },
        DualityRow {
            quantity: "mean aggregate rate",
            cluster: format!("nu_bar = N*nu_p*A = {:.4}", p.aggregate_rate),
            telco: format!("lambda = N*lambda_p*(1-b) = {:.4}", p.aggregate_rate),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn model() -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.0)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn dual_parameters() {
        let p = dual_params(&model());
        assert_eq!(p.sources, 2);
        assert_eq!(p.peak_rate, 2.0);
        assert!((p.burstiness - 0.1).abs() < 1e-9);
        assert!((p.mean_on - 90.0).abs() < 1e-9);
        assert!((p.mean_off - 10.0).abs() < 1e-9);
        assert!((p.aggregate_rate - 3.6).abs() < 1e-9);
    }

    #[test]
    fn dual_source_modulator_matches_service_process() {
        // For crash faults the dual source aggregate is exactly the
        // cluster's service MMPP.
        let m = model();
        let service = m.service_process().unwrap();
        let arrivals = dual_source(&m).unwrap().aggregate(2).unwrap();
        assert!(service
            .generator()
            .max_abs_diff(arrivals.generator())
            < 1e-12);
        assert_eq!(service.rates().as_slice(), arrivals.rates().as_slice());
    }

    #[test]
    fn table_has_all_rows() {
        let t = duality_table(&model());
        assert_eq!(t.len(), 5);
        assert!(t.iter().any(|r| r.cluster.contains("M/MMPP/1")));
        assert!(t.iter().any(|r| r.telco.contains("lambda_p")));
    }
}
