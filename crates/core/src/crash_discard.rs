//! Analytic model of the **Discard** failure-handling strategy
//! (paper Sect. 2.4, final bullet): for crash faults (`δ = 0`), a node
//! failure removes the task it was serving. In MAP terms the service
//! process gains event transitions `F` — the failure transitions of the
//! modulator — alongside the ordinary completion rates `L`:
//!
//! ```text
//! D₁ = L + F,   D₀ = Q − L − F .
//! ```
//!
//! Like the base model, this keeps the load-independence approximation:
//! at any level `n ≥ 1` every failing UP server is assumed busy, which
//! slightly overestimates discards when fewer tasks than servers are
//! present. The simulator ([`performa_sim::FailureStrategy::Discard`])
//! quantifies the residual gap.

use performa_linalg::Matrix;
use performa_markov::aggregate;
use performa_qbd::{mm1, Qbd, QbdSolution};

use crate::model::ClusterModel;
use crate::{CoreError, Result};

/// Analytic Discard-strategy model for a crash-fault cluster.
#[derive(Debug, Clone)]
pub struct CrashDiscardCluster {
    model: ClusterModel,
}

impl CrashDiscardCluster {
    /// Wraps a crash-fault cluster model.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] unless `δ = 0` (Discard only makes
    /// sense for crash faults — degraded servers keep serving).
    pub fn new(model: ClusterModel) -> Result<Self> {
        if model.degradation() != 0.0 {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "Discard applies to crash faults only (delta = 0), got delta = {}",
                    model.degradation()
                ),
            });
        }
        Ok(CrashDiscardCluster { model })
    }

    /// The underlying model.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Assembles the M/MAP/1 QBD with failure-triggered departures.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the layers below.
    pub fn to_qbd(&self) -> Result<Qbd> {
        let server = self.model.server_model()?;
        let (mmpp, f) = aggregate::lumped_with_failures(&server, self.model.servers())?;
        let dim = mmpp.dim();
        let lambda = self.model.arrival_rate();
        let li = Matrix::identity(dim) * lambda;
        let l = Matrix::diag(mmpp.rates().as_slice());
        let d1 = &l + &f;
        let a1 = &(&(mmpp.generator() - &li) - &l) - &f;
        let b00 = mmpp.generator() - &li;
        Ok(Qbd::new(li.clone(), a1, d1.clone(), b00, li, d1)?)
    }

    /// Solves the Discard model.
    ///
    /// Note: the drift condition is *weaker* than the base model's — the
    /// discard stream removes work, so loads that saturate the Resume
    /// model can still be stable under Discard.
    ///
    /// # Errors
    ///
    /// [`CoreError::Qbd`] for unstable or degenerate configurations.
    pub fn solve(&self) -> Result<CrashDiscardSolution> {
        let qbd = self.to_qbd()?;
        Ok(CrashDiscardSolution {
            model: self.model.clone(),
            inner: qbd.solve()?,
        })
    }
}

/// Stationary solution of the Discard model.
#[derive(Debug, Clone)]
pub struct CrashDiscardSolution {
    model: ClusterModel,
    inner: QbdSolution,
}

impl CrashDiscardSolution {
    /// Mean number of tasks in the system.
    pub fn mean_queue_length(&self) -> f64 {
        self.inner.mean_queue_length()
    }

    /// Mean queue length normalized by M/M/1 at the nominal utilization.
    pub fn normalized_mean_queue_length(&self) -> f64 {
        self.mean_queue_length()
            / mm1::mean_queue_length(self.model.utilization())
                .expect("solved model is stable, so utilization < 1")
    }

    /// Tail probability `Pr(Q > k)`.
    pub fn tail_probability(&self, k: usize) -> f64 {
        self.inner.tail_probability(k)
    }

    /// Probability of exactly `n` tasks.
    pub fn queue_length_pmf(&self, n: usize) -> f64 {
        self.inner.level_probability(n)
    }

    /// Long-run fraction of tasks that are discarded rather than
    /// completed: the stationary failure-event rate over the arrival rate
    /// (events only discard when a task is present).
    pub fn discard_fraction(&self) -> f64 {
        // Rate of failure transitions while at least one task is present.
        let server = self
            .model
            .server_model()
            .expect("validated at construction");
        let (mmpp, f) = aggregate::lumped_with_failures(&server, self.model.servers())
            .expect("validated at construction");
        let _ = mmpp;
        let fail_rates = f.row_sums();
        // Marginal phase law conditioned on queue > 0:
        // phi_busy = marginal_phase − π0.
        let marginal = self.inner.marginal_phase();
        let pi0 = self.inner.pi0();
        let busy_rate: f64 = (0..marginal.len())
            .map(|i| (marginal[i] - pi0[i]).max(0.0) * fail_rates[i])
            .sum();
        busy_rate / self.model.arrival_rate()
    }

    /// The raw QBD solution.
    pub fn qbd(&self) -> &QbdSolution {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn crash_model(rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.0)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(4, 1.4, 0.5, 10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn rejects_degradation_faults() {
        let m = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        assert!(CrashDiscardCluster::new(m).is_err());
    }

    #[test]
    fn discard_reduces_mean_queue_length() {
        for rho in [0.4, 0.6, 0.8] {
            let m = crash_model(rho);
            let resume = m.solve().unwrap().mean_queue_length();
            let discard = CrashDiscardCluster::new(m)
                .unwrap()
                .solve()
                .unwrap()
                .mean_queue_length();
            assert!(
                discard < resume,
                "rho={rho}: discard {discard} >= resume {resume}"
            );
        }
    }

    #[test]
    fn discard_fraction_is_small_and_positive() {
        let sol = CrashDiscardCluster::new(crash_model(0.6))
            .unwrap()
            .solve()
            .unwrap();
        let f = sol.discard_fraction();
        // Failures happen every ~100 time units per server; tasks arrive
        // every ~0.45: a small percent of tasks get discarded.
        assert!(f > 0.0 && f < 0.05, "discard fraction {f}");
    }

    #[test]
    fn solution_is_probability_law() {
        let sol = CrashDiscardCluster::new(crash_model(0.5))
            .unwrap()
            .solve()
            .unwrap();
        let total: f64 =
            (0..200).map(|n| sol.queue_length_pmf(n)).sum::<f64>() + sol.tail_probability(199);
        assert!((total - 1.0).abs() < 1e-8);
        assert!(sol.normalized_mean_queue_length() > 1.0);
    }

    #[test]
    fn discard_matches_simulation() {
        use performa_sim::{
            ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion,
        };
        let m = crash_model(0.6);
        let analytic = CrashDiscardCluster::new(m.clone())
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        let cfg = ClusterSimConfig {
            servers: 2,
            nu_p: 2.0,
            delta: 0.0,
            up: m.up().clone(),
            down: m.down().clone(),
            task: Exponential::with_mean(0.5).unwrap().into(),
            lambda: m.arrival_rate(),
            strategy: FailureStrategy::Discard,
            stop: StopCriterion::Cycles(30_000),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg).unwrap();
        let vals: Vec<f64> = (0..6).map(|s| sim.run(s).mean_queue_length).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        // Load-independence + busy-failure approximations leave a modest
        // gap; shapes must agree within ~20 %.
        assert!(
            (mean / analytic - 1.0).abs() < 0.2,
            "sim {mean} vs analytic {analytic}"
        );
    }
}
