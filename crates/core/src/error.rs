use std::fmt;

/// Errors produced by the cluster performability model.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A model parameter was outside its documented domain.
    InvalidParameter {
        /// Explanation of the violated precondition.
        message: String,
    },
    /// A required model component was not supplied to the builder.
    MissingComponent {
        /// Name of the missing component, e.g. `"down distribution"`.
        name: &'static str,
    },
    /// The offered load is at or above the long-run service capacity.
    Unstable {
        /// Offered arrival rate λ.
        lambda: f64,
        /// Long-run capacity ν̄.
        capacity: f64,
    },
    /// Underlying distribution failure.
    Dist(performa_dist::DistError),
    /// Underlying Markov-model failure.
    Markov(performa_markov::MarkovError),
    /// Underlying QBD-solver failure.
    Qbd(performa_qbd::QbdError),
    /// A persisted failure record replayed from the durable result
    /// store: the point failed identically in an earlier run and is
    /// not re-attempted (pass `retry_failed` to force a re-solve).
    ReplayedFailure {
        /// Machine-readable failure class of the original error.
        kind: String,
        /// The original error's rendered message.
        message: String,
    },
    /// The durable result store failed (I/O or corruption).
    Store {
        /// The store layer's rendered error.
        message: String,
    },
    /// The sweep was cancelled (Ctrl-C or a tripped `CancelToken`) or
    /// its run budget was exhausted before this point was solved. The
    /// point is *not* persisted as a failure — a resumed run re-solves
    /// it from scratch.
    Cancelled,
    /// The point tripped its per-point deadline twice (cold solve and
    /// hardened retry) and was persisted as a quarantined failure so a
    /// resumed run will not re-block a pool thread on it.
    Quarantined {
        /// What the point was doing when each deadline expired.
        message: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidParameter { message } => write!(f, "invalid parameter: {message}"),
            CoreError::MissingComponent { name } => {
                write!(f, "cluster builder is missing the {name}")
            }
            CoreError::Unstable { lambda, capacity } => write!(
                f,
                "cluster is unstable: arrival rate {lambda:.6} >= capacity {capacity:.6}"
            ),
            CoreError::Dist(e) => write!(f, "distribution error: {e}"),
            CoreError::Markov(e) => write!(f, "Markov model error: {e}"),
            CoreError::Qbd(e) => write!(f, "QBD solver error: {e}"),
            CoreError::ReplayedFailure { kind, message } => {
                write!(f, "replayed {kind} failure from result store: {message}")
            }
            CoreError::Store { message } => write!(f, "result store error: {message}"),
            CoreError::Cancelled => {
                write!(f, "sweep point cancelled before it was solved")
            }
            CoreError::Quarantined { message } => {
                write!(f, "point quarantined after repeated deadline trips: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Dist(e) => Some(e),
            CoreError::Markov(e) => Some(e),
            CoreError::Qbd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<performa_dist::DistError> for CoreError {
    fn from(e: performa_dist::DistError) -> Self {
        CoreError::Dist(e)
    }
}

impl From<performa_markov::MarkovError> for CoreError {
    fn from(e: performa_markov::MarkovError) -> Self {
        CoreError::Markov(e)
    }
}

impl From<performa_qbd::QbdError> for CoreError {
    fn from(e: performa_qbd::QbdError) -> Self {
        CoreError::Qbd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(CoreError::MissingComponent { name: "up distribution" }
            .to_string()
            .contains("up distribution"));
        assert!(CoreError::Unstable {
            lambda: 2.0,
            capacity: 1.0
        }
        .to_string()
        .contains("unstable"));
    }

    #[test]
    fn sources_chain() {
        use std::error::Error;
        let e: CoreError = performa_qbd::QbdError::Unstable {
            up_rate: 1.0,
            down_rate: 0.5,
        }
        .into();
        assert!(e.source().is_some());
    }
}
