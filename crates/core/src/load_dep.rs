//! The load-dependent cluster variant of paper Sect. 2.4: when fewer than
//! `N` tasks are present, not every server can be busy, so the attainable
//! service rate at level `j < N` is the sum of the `j` *fastest* per-server
//! rates in the current phase configuration (the dispatcher prefers
//! operational servers).
//!
//! The plain [`crate::ClusterModel`] ignores this effect — paper Eq. (2)
//! "is always assumed to be exactly true" — and is therefore a (slightly
//! pessimistic) bound; this module implements the exact correction with a
//! level-dependent QBD boundary, which the simulator validates (Fig. 7).

use performa_linalg::{Matrix, Vector};
use performa_markov::aggregate::occupancy_states;
use performa_qbd::{mm1, LevelDependentQbd, LevelDependentSolution as LdSolution};

use crate::model::ClusterModel;
use crate::{CoreError, Result};

/// Load-dependent refinement of a [`ClusterModel`].
#[derive(Debug, Clone)]
pub struct LoadDependentCluster {
    model: ClusterModel,
}

impl LoadDependentCluster {
    /// Wraps a cluster model.
    pub fn new(model: ClusterModel) -> Self {
        LoadDependentCluster { model }
    }

    /// The underlying (load-independent) model.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Builds the level-dependent QBD: levels `0..N` carry reduced service
    /// rates, level `N` and above are the homogeneous M/MMPP/1 blocks.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the layers below.
    pub fn to_qbd(&self) -> Result<LevelDependentQbd> {
        let n = self.model.servers();
        let lambda = self.model.arrival_rate();
        let single = self.model.server_model()?.modulator();
        let m1 = single.dim();
        let states = occupancy_states(m1, n);
        let dim = states.len();

        let full = self.model.service_process()?;
        debug_assert_eq!(full.dim(), dim);
        let q = full.generator().clone();
        let li = Matrix::identity(dim) * lambda;

        // Per-level service-rate diagonal: with j tasks, the j fastest
        // servers (by their current phase rate) are busy.
        let rate_at_level = |j: usize| -> Vector {
            let mut out = Vector::zeros(dim);
            for (si, v) in states.iter().enumerate() {
                let mut per_server: Vec<f64> = Vec::with_capacity(n);
                for (phase, &count) in v.iter().enumerate() {
                    for _ in 0..count {
                        per_server.push(single.rates()[phase]);
                    }
                }
                per_server.sort_by(|a, b| b.partial_cmp(a).expect("rates are finite"));
                out[si] = per_server.iter().take(j).sum();
            }
            out
        };

        let mut up = Vec::with_capacity(n);
        let mut local = Vec::with_capacity(n);
        let mut down = Vec::with_capacity(n.saturating_sub(1));
        for j in 0..n {
            let lj = Matrix::diag(rate_at_level(j).as_slice());
            up.push(li.clone());
            local.push(&(&q - &li) - &lj);
            if j > 0 {
                // down[j−1] maps level j → j−1 and therefore carries the
                // level-j service rates.
                down.push(lj);
            }
        }

        let l_full = Matrix::diag(full.rates().as_slice());
        let a1 = &(&q - &li) - &l_full;
        Ok(LevelDependentQbd::new(up, local, down, li, a1, l_full)?)
    }

    /// Solves the load-dependent model.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unstable`] when the load exceeds capacity; solver
    /// errors otherwise.
    pub fn solve(&self) -> Result<LoadDependentSolution> {
        if self.model.arrival_rate() >= self.model.capacity() {
            return Err(CoreError::Unstable {
                lambda: self.model.arrival_rate(),
                capacity: self.model.capacity(),
            });
        }
        let sol = self.to_qbd()?.solve()?;
        Ok(LoadDependentSolution {
            model: self.model.clone(),
            inner: sol,
        })
    }
}

/// Stationary solution of the load-dependent cluster.
#[derive(Debug, Clone)]
pub struct LoadDependentSolution {
    model: ClusterModel,
    inner: LdSolution,
}

impl LoadDependentSolution {
    /// Mean number of tasks in the system.
    pub fn mean_queue_length(&self) -> f64 {
        self.inner.mean_queue_length()
    }

    /// Mean queue length normalized by M/M/1 at equal utilization.
    pub fn normalized_mean_queue_length(&self) -> f64 {
        self.mean_queue_length()
            / mm1::mean_queue_length(self.model.utilization())
                .expect("solved model is stable, so utilization < 1")
    }

    /// Probability of exactly `n` tasks.
    pub fn queue_length_pmf(&self, n: usize) -> f64 {
        self.inner.level_probability(n)
    }

    /// Tail probability `Pr(Q > k)`.
    pub fn tail_probability(&self, k: usize) -> f64 {
        self.inner.tail_probability(k)
    }

    /// Diagnostic: total probability mass (1 up to round-off).
    pub fn total_probability(&self) -> f64 {
        self.inner.total_probability()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn model(rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn mass_conserved() {
        let sol = LoadDependentCluster::new(model(0.5)).solve().unwrap();
        assert!((sol.total_probability() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn load_dependence_reduces_queue_length() {
        // The load-independent model over-serves at small queue lengths
        // (it lets idle capacity work), so it is a *lower* bound on the
        // mean queue length: the load-dependent exact model must be
        // larger, but only slightly (paper Fig. 7).
        for rho in [0.3, 0.6, 0.8] {
            let li = model(rho).solve().unwrap().mean_queue_length();
            let ld = LoadDependentCluster::new(model(rho))
                .solve()
                .unwrap()
                .mean_queue_length();
            assert!(ld > li, "rho={rho}: load-dep {ld} <= load-indep {li}");
            // The correction is bounded: less than the ~N extra tasks that
            // can sit in service positions.
            assert!(ld < li + 2.0, "rho={rho}: gap too large ({li} vs {ld})");
        }
    }

    #[test]
    fn effect_vanishes_at_high_load() {
        // Relative difference shrinks as rho → 1 (queue rarely below N).
        let rel = |rho: f64| {
            let li = model(rho).solve().unwrap().mean_queue_length();
            let ld = LoadDependentCluster::new(model(rho))
                .solve()
                .unwrap()
                .mean_queue_length();
            (ld - li) / li
        };
        assert!(rel(0.9) < rel(0.3));
    }

    #[test]
    fn single_server_load_dependence_is_trivial() {
        // N = 1: no level below N except the empty queue, whose service
        // rate is zero in both variants ⇒ identical results.
        let m = ClusterModel::builder()
            .servers(1)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(0.6)
            .build()
            .unwrap();
        let li = m.solve().unwrap().mean_queue_length();
        let ld = LoadDependentCluster::new(m).solve().unwrap().mean_queue_length();
        assert!((li - ld).abs() < 1e-9, "{li} vs {ld}");
    }

    #[test]
    fn works_with_tpt_repairs() {
        let m = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        let sol = LoadDependentCluster::new(m).solve().unwrap();
        assert!((sol.total_probability() - 1.0).abs() < 1e-9);
        assert!(sol.mean_queue_length() > 0.0);
        assert!(sol.tail_probability(0) < 1.0);
        assert!(sol.queue_length_pmf(0) > 0.0);
        assert!(sol.normalized_mean_queue_length() > 1.0);
    }

    #[test]
    fn unstable_rejected() {
        let m = model(0.5).with_arrival_rate(4.0).unwrap();
        assert!(matches!(
            LoadDependentCluster::new(m).solve(),
            Err(CoreError::Unstable { .. })
        ));
    }
}
