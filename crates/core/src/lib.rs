//! `performa-core` — the analytic performability model of
//! *Performability Models for Multi-Server Systems with High-Variance
//! Repair Durations* (Schwefel & Antonios, DSN 2007).
//!
//! A cluster of `N` statistically identical nodes serves Poisson task
//! arrivals from a common dispatcher queue. Each node alternates between an
//! UP period (full rate `ν_p`) and a DOWN/repair period (degraded rate
//! `δ·ν_p`). Under exponential task times and load independence the system
//! is an **M/MMPP/1 queue** solved exactly by matrix-geometric methods.
//!
//! The crate exposes:
//!
//! * [`ClusterModel`] — validated model definition (builder included) and
//!   the assembly pipeline distribution → modulator → QBD,
//! * [`ClusterSolution`] — mean queue length (absolute and normalized by
//!   M/M/1), queue-length tails and pmf, delay-bound violation estimates,
//! * [`blowup`] — the paper's blow-up point analysis: threshold rates
//!   `ν_i` (Eq. 3), utilization regions (Eq. 4), availability regions
//!   (Eq. 5) and queue-tail exponents `β_i = i(α−1)+1`,
//! * [`telco`] — the cluster ↔ N-Burst teletraffic duality of Sect. 2.3,
//! * [`LoadDependentCluster`] — the Sect. 2.4 extension in which fewer
//!   tasks than servers reduce the attainable service rate (level-dependent
//!   QBD), closing the gap to the physical multi-processor system,
//! * [`FiniteBufferCluster`] — the ME/MMPP/1/K finite-dispatcher-queue
//!   variant with loss probabilities,
//! * [`ClusterModel::solve_supervised`] — the resilient solver entry
//!   point: a fallback chain of G-matrix strategies with numerical
//!   watchdogs, returning a structured [`SolveReport`].
//!
//! # Quickstart: reproducing a point of the paper's Figure 1
//!
//! ```
//! use performa_core::ClusterModel;
//! use performa_dist::{Exponential, TruncatedPowerTail};
//!
//! let model = ClusterModel::builder()
//!     .servers(2)
//!     .peak_rate(2.0)
//!     .degradation(0.2)
//!     .up(Exponential::with_mean(90.0)?)
//!     .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?)
//!     .utilization(0.7)
//!     .build()?;
//!
//! let sol = model.solve()?;
//! // Deep in the paper's blow-up region the normalized mean queue length
//! // is orders of magnitude above M/M/1.
//! assert!(sol.normalized_mean_queue_length() > 30.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blowup;
pub mod ctrl;
pub mod sensitivity;
pub mod sweep;
pub mod telco;

mod crash_discard;
mod error;
mod finite_buffer;
mod load_dep;
mod map_arrivals;
mod model;
mod performability;
mod solution;

pub use crash_discard::{CrashDiscardCluster, CrashDiscardSolution};
pub use ctrl::{install_sigint, CancelToken, RunBudget, EXIT_PARTIAL};
pub use error::CoreError;
pub use finite_buffer::{FiniteBufferCluster, FiniteBufferSolution};
pub use load_dep::{LoadDependentCluster, LoadDependentSolution};
pub use map_arrivals::{MeArrivalCluster, MeArrivalSolution};
pub use model::{ClusterBuilder, ClusterModel};
pub use performability::TransientAnalysis;
pub use solution::ClusterSolution;
pub use sweep::{
    store_key, Axis, Grid, Scenario, SweepOptions, SweepPlan, SweepPoint, SweepResult, SweepStats,
};

// Re-exported so sweep callers can open/merge/verify the durable
// result store without a direct store dependency.
pub use performa_store::{
    merge as store_merge, verify as store_verify, OpenStats, PointKey, PointRecord, StoreError,
    StoreHandle,
};

// Re-exported so callers of [`ClusterModel::solve_supervised`] can
// configure the resilient solver pipeline without a direct QBD
// dependency.
pub use performa_qbd::{
    GStrategy, SolveReport, SolveWarning, SolverSupervisor, StageBudget, SupervisorOptions,
};

/// Result alias for fallible model operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// One-line import for experiment binaries and downstream tools.
///
/// Pulls in the model builders, the sweep machinery, the supervised
/// solver configuration (including the [`GStrategy`]/[`Hardening`]
/// string round-trips) and the distribution specs — everything a
/// typical figure-reproduction `main` touches:
///
/// ```
/// use performa_core::prelude::*;
///
/// let opts = SweepOptions::default().with_threads(1);
/// assert_eq!(opts.threads, 1);
/// ```
pub mod prelude {
    pub use crate::{blowup, sensitivity, telco};
    pub use crate::{
        install_sigint, store_key, Axis, CancelToken, ClusterBuilder, ClusterModel,
        ClusterSolution, CoreError, CrashDiscardCluster, CrashDiscardSolution, FiniteBufferCluster,
        FiniteBufferSolution, GStrategy, Grid, LoadDependentCluster, LoadDependentSolution,
        MeArrivalCluster, MeArrivalSolution, RunBudget, Scenario, SolveReport, SolverSupervisor,
        StageBudget, StoreHandle, SupervisorOptions, SweepOptions, SweepPlan, SweepResult,
        SweepStats, TransientAnalysis, EXIT_PARTIAL,
    };
    pub use performa_dist::DistSpec;
    pub use performa_qbd::{Hardening, SolveOptions};
}
