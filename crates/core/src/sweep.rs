//! Declarative parameter sweeps with a parallel, caching execution
//! engine.
//!
//! Every headline figure of the paper is a *sweep*: the same cluster
//! model solved at dozens of grid points along one axis (utilization,
//! availability, repair-tail truncation, …). This module replaces the
//! hand-rolled serial loops of the experiment binaries and the CLI with
//! a declarative pipeline:
//!
//! 1. A [`Scenario`] pairs a template [`ClusterModel`] with a named
//!    [`Axis`] and compiles into a [`SweepPlan`] — one prebuilt model
//!    per grid point (a bad point records its error and never kills the
//!    sweep).
//! 2. [`SweepPlan::run`] / [`SweepPlan::run_map`] execute the points on
//!    a work-stealing pool of `std` scoped threads (the worker pattern
//!    of `performa_sim::replicate`) and collect results **in index
//!    order**, so the output is deterministic regardless of thread
//!    count.
//! 3. Two caching layers cut redundant work: a **modulator cache**
//!    shares the lumped MMPP service process between points whose
//!    failure/repair side is identical (every λ/ρ sweep), and
//!    **neighbor warm-starting** seeds each worker's next `G` solve
//!    with its previous converged `G`
//!    ([`performa_qbd::SolveOptions::initial_g`]), falling back to a
//!    cold solve whenever the seeded iteration does not converge or
//!    its residual is not acceptable.
//!
//! # Determinism
//!
//! With the default [`SweepOptions`] the engine is **bit-identical** to
//! the serial loop `for x { model_at(x).solve() }`: each point is an
//! independent plain [`ClusterModel::solve`] (the cached modulator is
//! built by the same deterministic construction it replaces), and
//! results are stored by index. Warm-starting (`warm_start: true`)
//! trades bit-identity for speed: accepted seeds converge to the same
//! `G` only up to the acceptance residual (see
//! [`SweepOptions::warm_start`]).
//!
//! # Example
//!
//! ```
//! use performa_core::{Axis, ClusterModel, Scenario};
//! use performa_dist::{Exponential, TruncatedPowerTail};
//!
//! let template = ClusterModel::builder()
//!     .servers(2)
//!     .peak_rate(2.0)
//!     .degradation(0.2)
//!     .up(Exponential::with_mean(90.0)?)
//!     .down(TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0)?)
//!     .utilization(0.5)
//!     .build()?;
//! let result = Scenario::new(template, Axis::Rho(vec![0.2, 0.4, 0.6]))
//!     .compile()
//!     .run_map(|sol| sol.normalized_mean_queue_length());
//! assert_eq!(result.points().len(), 3);
//! assert!(result.points().iter().all(|p| p.outcome.is_ok()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use performa_dist::{Dist, Moments, TruncatedPowerTail};
use performa_linalg::{Matrix, Vector};
use performa_markov::Mmpp;
use performa_qbd::{
    Qbd, QbdError, QbdSolution, SolveOptions, SolverSupervisor, SupervisorOptions, SOLVER_VERSION,
};
use performa_store::{PointKey, PointRecord, StoreHandle};

use crate::ctrl::{CancelToken, RunBudget};
use crate::model::ClusterModel;
use crate::solution::ClusterSolution;
use crate::{CoreError, Result};

/// Relative residual acceptance for warm-started `G` candidates: a
/// seeded functional iteration is accepted only if
/// `‖A2 + A1·G + A0·G²‖∞ ≤ WARM_ACCEPT_TOL × (‖A0‖ + ‖A1‖ + ‖A2‖)`
/// (the supervisor's block-scaled residual metric); otherwise the point
/// falls back to a cold logarithmic-reduction solve.
const WARM_ACCEPT_TOL: f64 = 1e-12;

/// A refinable one-dimensional grid of sweep coordinates.
///
/// [`Grid::refine_near`] densifies the grid around interesting
/// abscissae (the blow-up thresholds `ρ_i` of the paper) exactly the
/// way the historical `performa_experiments::rho_grid` helper did, so
/// ported figures reproduce their grids bit-for-bit.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    values: Vec<f64>,
}

impl Grid {
    /// A linear grid of `steps + 1` points from `lo` to `hi` inclusive.
    pub fn linear(lo: f64, hi: f64, steps: usize) -> Grid {
        let steps = steps.max(1);
        Grid {
            values: (0..=steps)
                .map(|i| lo + (hi - lo) * i as f64 / steps as f64)
                .collect(),
        }
    }

    /// Adds refinement points at `±0.02` and `±0.005` around each
    /// threshold (clamped to the open interval of the grid), then sorts
    /// and deduplicates at `1e-9` — the exact refinement scheme the
    /// paper figures use near the blow-up utilizations `ρ_i`.
    #[must_use]
    pub fn refine_near(mut self, thresholds: &[f64]) -> Grid {
        let (lo, hi) = match (self.values.first(), self.values.last()) {
            (Some(&lo), Some(&hi)) => (lo, hi),
            _ => return self,
        };
        for &r in thresholds {
            for eps in [-0.02, -0.005, 0.005, 0.02] {
                let x = r + eps;
                if x > lo && x < hi {
                    self.values.push(x);
                }
            }
        }
        self.values
            .sort_by(|a, b| a.partial_cmp(b).expect("grid values are not NaN"));
        self.values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        self
    }

    /// The grid coordinates, ascending.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Consumes the grid into its coordinate vector.
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }
}

/// The swept model parameter, with one value per grid point.
///
/// Each axis fixes how a grid coordinate `x` transforms the scenario's
/// template model:
///
/// * [`Axis::Rho`] — utilization; `λ` is set to `x·ν̄`.
/// * [`Axis::Lambda`] — raw arrival rate.
/// * [`Axis::Delta`] — degradation factor `δ` at fixed `λ`.
/// * [`Axis::Availability`] — cycle-preserving availability rescale
///   ([`ClusterModel::with_availability`]) at fixed `λ`.
/// * [`Axis::TptOrder`] — truncation order `T` of a TPT repair
///   distribution (same `α`, `θ`, mean) at fixed `λ`.
/// * [`Axis::Servers`] — cluster size `N` at fixed utilization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Axis {
    /// Sweep utilization `ρ = λ/ν̄`.
    Rho(Vec<f64>),
    /// Sweep the arrival rate `λ`.
    Lambda(Vec<f64>),
    /// Sweep the degradation factor `δ` at fixed arrival rate.
    Delta(Vec<f64>),
    /// Sweep per-node availability by cycle-preserving rescale, at
    /// fixed arrival rate.
    Availability(Vec<f64>),
    /// Sweep the repair-tail truncation order `T` (requires a
    /// truncated-power-tail DOWN distribution), at fixed arrival rate.
    TptOrder(Vec<u32>),
    /// Sweep the cluster size `N` at fixed utilization.
    Servers(Vec<usize>),
}

impl Axis {
    /// The axis name used for spans and CSV headers.
    pub fn label(&self) -> &'static str {
        match self {
            Axis::Rho(_) => "rho",
            Axis::Lambda(_) => "lambda",
            Axis::Delta(_) => "delta",
            Axis::Availability(_) => "availability",
            Axis::TptOrder(_) => "tpt_order",
            Axis::Servers(_) => "servers",
        }
    }

    /// The grid coordinates as `f64` (integer axes are widened).
    pub fn coordinates(&self) -> Vec<f64> {
        match self {
            Axis::Rho(v) | Axis::Lambda(v) | Axis::Delta(v) | Axis::Availability(v) => v.clone(),
            Axis::TptOrder(v) => v.iter().map(|&t| f64::from(t)).collect(),
            Axis::Servers(v) => v.iter().map(|&n| n as f64).collect(),
        }
    }

    /// Builds the model for coordinate index `i` from the template.
    fn apply(&self, template: &ClusterModel, i: usize) -> Result<ClusterModel> {
        match self {
            Axis::Rho(v) => template.with_utilization(v[i]),
            Axis::Lambda(v) => template.with_arrival_rate(v[i]),
            Axis::Delta(v) => ClusterModel::builder()
                .servers(template.servers())
                .peak_rate(template.peak_rate())
                .degradation(v[i])
                .up(template.up().clone())
                .down(template.down().clone())
                .arrival_rate(template.arrival_rate())
                .build(),
            Axis::Availability(v) => template.with_availability(v[i]),
            Axis::TptOrder(v) => {
                let down = match template.down() {
                    Dist::TruncatedPowerTail(t) => TruncatedPowerTail::with_mean(
                        v[i],
                        t.alpha(),
                        t.theta(),
                        t.mean(),
                    )?,
                    other => {
                        return Err(CoreError::InvalidParameter {
                            message: format!(
                                "TptOrder axis requires a TPT repair distribution, got {}",
                                other.family()
                            ),
                        })
                    }
                };
                ClusterModel::builder()
                    .servers(template.servers())
                    .peak_rate(template.peak_rate())
                    .degradation(template.degradation())
                    .up(template.up().clone())
                    .down(down)
                    .arrival_rate(template.arrival_rate())
                    .build()
            }
            Axis::Servers(v) => ClusterModel::builder()
                .servers(v[i])
                .peak_rate(template.peak_rate())
                .degradation(template.degradation())
                .up(template.up().clone())
                .down(template.down().clone())
                .utilization(template.utilization())
                .build(),
        }
    }
}

/// A model template plus the axis to sweep — the declarative input of
/// the engine.
#[derive(Debug, Clone)]
pub struct Scenario {
    template: ClusterModel,
    axis: Axis,
}

impl Scenario {
    /// Pairs a template model with a sweep axis.
    pub fn new(template: ClusterModel, axis: Axis) -> Self {
        Scenario { template, axis }
    }

    /// Compiles the scenario into an executable [`SweepPlan`]: one
    /// model per grid point, built eagerly. A point whose model cannot
    /// be built (e.g. a parameter outside its domain) is recorded as a
    /// failed point; it does not abort compilation.
    pub fn compile(self) -> SweepPlan {
        let xs = self.axis.coordinates();
        let models = (0..xs.len()).map(|i| self.axis.apply(&self.template, i));
        SweepPlan::assemble(self.axis.label(), xs.clone().into_iter(), models)
    }
}

/// Execution knobs of a [`SweepPlan`].
///
/// Marked `#[non_exhaustive]`: construct with [`SweepOptions::default`]
/// and the `with_*` builders so new knobs can be added without breaking
/// downstream crates.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct SweepOptions {
    /// Worker threads; `0` means all available parallelism. The thread
    /// count never changes results — collection is index-ordered.
    pub threads: usize,
    /// Seed each worker's next `G` solve with its previous converged
    /// `G` (neighbor warm-starting). Accepted seeds agree with a cold
    /// solve only up to the acceptance residual, so this is off by
    /// default; leave it off when bit-identity with the serial loop
    /// matters.
    pub warm_start: bool,
    /// Share the lumped MMPP service process between points with an
    /// identical failure/repair side (`⟨Q₁,L₁⟩` and the lumped
    /// aggregate are λ-independent, so every ρ/λ sweep builds them
    /// once). The cached construction is bit-identical to the per-point
    /// rebuild it replaces; on by default.
    pub reuse_modulator: bool,
    /// Solve each point through the resilient [`SolverSupervisor`]
    /// instead of the plain default-tolerance solve. `None` (default)
    /// keeps the plain path, which is what the paper figures use —
    /// the supervisor's relaxed acceptance and `G` renormalization are
    /// not bit-identical to [`ClusterModel::solve`].
    pub supervisor: Option<SupervisorOptions>,
    /// Iteration budget for a warm-started functional attempt before
    /// the point falls back to a cold solve.
    pub warm_budget: usize,
    /// Durable result store. When set, the pool consults the store
    /// before solving each point (a hit replays the persisted solution
    /// bit-identically via [`performa_qbd::QbdSolution::from_parts`])
    /// and appends every fresh outcome — solved points *and* typed
    /// solver failures — after solving. A killed sweep rerun with the
    /// same store therefore re-solves only the gap.
    pub store: Option<StoreHandle>,
    /// Re-attempt points whose store record is a persisted *failure*
    /// instead of replaying the failure. (Solved records are always
    /// replayed; a solver-version bump invalidates both kinds by
    /// changing the key.)
    pub retry_failed: bool,
    /// Cooperative cancellation token. When tripped (Ctrl-C via
    /// [`crate::install_sigint`], or programmatically) the pool stops
    /// issuing points, in-flight solves abort at their next interrupt
    /// check, and every unsolved point reports [`CoreError::Cancelled`]
    /// — which is never persisted, so a resumed run with the same store
    /// re-solves exactly the cancelled gap.
    pub cancel: Option<CancelToken>,
    /// Whole-run wall-clock budget, split into per-point deadlines by
    /// [`RunBudget`] (fair share, raised for expensive-looking points,
    /// floored — see [`crate::ctrl`]). When the budget runs out the
    /// remaining points report [`CoreError::Cancelled`] and the run
    /// returns partial results.
    pub run_budget: Option<Duration>,
    /// Fixed per-point deadline. A point that trips it twice — the
    /// cold attempt and one hardened retry under a fresh deadline — is
    /// persisted as a *quarantined* failure ([`CoreError::Quarantined`])
    /// so a resumed run replays the failure instead of re-blocking a
    /// pool thread on it. Combined with `run_budget`, the tighter of
    /// the two deadlines applies.
    pub point_deadline: Option<Duration>,
    /// Threads for the *linear-algebra kernels inside one solve*
    /// (parallel GEMM row panels and multi-RHS LU stripes), applied
    /// process-wide via [`performa_linalg::threading::set_threads`]
    /// when the plan runs. Independent of `threads` (the per-point
    /// worker pool): a wide sweep wants many point workers and serial
    /// kernels; a single huge point wants the opposite. `0` means all
    /// cores, `None` leaves the process setting untouched. Kernel
    /// threading never changes results — the parallel schedules are
    /// bitwise identical to serial.
    pub kernel_threads: Option<usize>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            threads: 0,
            warm_start: false,
            reuse_modulator: true,
            supervisor: None,
            warm_budget: 2000,
            store: None,
            retry_failed: false,
            cancel: None,
            run_budget: None,
            point_deadline: None,
            kernel_threads: None,
        }
    }
}

impl SweepOptions {
    /// Sets the per-point worker thread count (`0` = all cores).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enables or disables neighbor warm-starting.
    #[must_use]
    pub fn with_warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Enables or disables modulator sharing between like points.
    #[must_use]
    pub fn with_reuse_modulator(mut self, on: bool) -> Self {
        self.reuse_modulator = on;
        self
    }

    /// Routes every point through the resilient supervisor.
    #[must_use]
    pub fn with_supervisor(mut self, supervisor: SupervisorOptions) -> Self {
        self.supervisor = Some(supervisor);
        self
    }

    /// Sets the warm-started attempt's iteration budget.
    #[must_use]
    pub fn with_warm_budget(mut self, budget: usize) -> Self {
        self.warm_budget = budget;
        self
    }

    /// Attaches a durable result store.
    #[must_use]
    pub fn with_store(mut self, store: StoreHandle) -> Self {
        self.store = Some(store);
        self
    }

    /// Re-attempts points whose store record is a persisted failure.
    #[must_use]
    pub fn with_retry_failed(mut self, on: bool) -> Self {
        self.retry_failed = on;
        self
    }

    /// Attaches a cooperative cancellation token.
    #[must_use]
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Sets the whole-run wall-clock budget.
    #[must_use]
    pub fn with_run_budget(mut self, budget: Duration) -> Self {
        self.run_budget = Some(budget);
        self
    }

    /// Sets the fixed per-point deadline.
    #[must_use]
    pub fn with_point_deadline(mut self, deadline: Duration) -> Self {
        self.point_deadline = Some(deadline);
        self
    }

    /// Sets the in-solve kernel thread count (`0` = all cores).
    #[must_use]
    pub fn with_kernel_threads(mut self, threads: usize) -> Self {
        self.kernel_threads = Some(threads);
        self
    }
}

/// One compiled grid point: coordinate, prebuilt model (or its build
/// error) and the modulator-cache group it belongs to.
#[derive(Debug, Clone)]
struct PlanPoint {
    x: f64,
    model: std::result::Result<ClusterModel, String>,
    group: usize,
}

/// A compiled, executable sweep: prebuilt per-point models, the
/// modulator-cache grouping, and the execution options.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    label: &'static str,
    points: Vec<PlanPoint>,
    groups: usize,
    options: SweepOptions,
}

/// λ-independent fingerprint of the model's failure/repair side — the
/// modulator-cache key ("the model minus the swept axis"). Two points
/// with equal fingerprints have bit-identical `⟨Q₁,L₁⟩` server models
/// and lumped aggregates.
fn modulator_fingerprint(model: &ClusterModel) -> String {
    format!(
        "n={};nu={};delta={};up={:?};down={:?}",
        model.servers(),
        model.peak_rate().to_bits(),
        model.degradation().to_bits(),
        model.up(),
        model.down(),
    )
}

/// The durable-store key of one sweep point: the λ-completed model
/// fingerprint (every builder input, with `f64`s as exact bits), the
/// grid coordinate, and the solver-stack version. Equal keys guarantee
/// bit-identical solves, which is what makes store replay safe.
pub fn store_key(model: &ClusterModel, x: f64) -> PointKey {
    PointKey {
        fingerprint: format!(
            "{};lambda={}",
            modulator_fingerprint(model),
            model.arrival_rate().to_bits()
        ),
        solver_version: SOLVER_VERSION,
        x_bits: x.to_bits(),
    }
}

impl SweepPlan {
    /// Starts a [`Grid`] builder (`SweepPlan::grid(lo, hi, steps)
    /// .refine_near(&thresholds)` is the canonical figure grid).
    pub fn grid(lo: f64, hi: f64, steps: usize) -> Grid {
        Grid::linear(lo, hi, steps)
    }

    /// Compiles a plan from explicit coordinates and a model builder —
    /// the escape hatch for sweeps no named [`Axis`] expresses (e.g.
    /// Fig. 5's per-point re-fitted HYP-2 repair distribution). The
    /// builder runs eagerly, once per coordinate; a failed build is
    /// recorded as a failed point.
    pub fn from_builder<F>(label: &'static str, xs: Vec<f64>, mut build: F) -> SweepPlan
    where
        F: FnMut(f64) -> Result<ClusterModel>,
    {
        let models: Vec<Result<ClusterModel>> = xs.iter().map(|&x| build(x)).collect();
        SweepPlan::assemble(label, xs.into_iter(), models.into_iter())
    }

    fn assemble(
        label: &'static str,
        xs: impl Iterator<Item = f64>,
        models: impl Iterator<Item = Result<ClusterModel>>,
    ) -> SweepPlan {
        let mut group_of: HashMap<String, usize> = HashMap::new();
        let points = xs
            .zip(models)
            .map(|(x, model)| match model {
                Ok(m) => {
                    let next = group_of.len();
                    let group = *group_of.entry(modulator_fingerprint(&m)).or_insert(next);
                    PlanPoint {
                        x,
                        model: Ok(m),
                        group,
                    }
                }
                Err(e) => PlanPoint {
                    x,
                    model: Err(e.to_string()),
                    group: usize::MAX,
                },
            })
            .collect::<Vec<_>>();
        let groups = group_of.len();
        SweepPlan {
            label,
            points,
            groups,
            options: SweepOptions::default(),
        }
    }

    /// Replaces the execution options.
    #[must_use]
    pub fn with_options(mut self, options: SweepOptions) -> Self {
        self.options = options;
        self
    }

    /// Restricts the plan to shard `i` of `n`: the points whose plan
    /// index is `≡ i (mod n)`. Round-robin assignment keeps every
    /// shard's load comparable even when cost varies smoothly along
    /// the axis (it spikes near the blow-up thresholds). Runs of all
    /// `n` shards against per-shard stores, followed by a store merge,
    /// reproduce the unsharded run exactly — store keys depend on the
    /// model and coordinate, never on the sharding.
    ///
    /// # Panics
    ///
    /// Panics unless `i < n` and `n > 0`.
    #[must_use]
    pub fn shard(mut self, i: usize, n: usize) -> Self {
        assert!(n > 0 && i < n, "shard index {i} out of range for {n} shards");
        let mut idx = 0usize;
        self.points.retain(|_| {
            let keep = idx % n == i;
            idx += 1;
            keep
        });
        // Group ids and the group count stay as compiled: unused
        // modulator-cache cells are harmless, and keeping ids stable
        // means a shard still shares cells exactly like the full plan.
        self
    }

    /// The axis label the plan was compiled from.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the plan has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The grid coordinates, in plan order.
    pub fn coordinates(&self) -> Vec<f64> {
        self.points.iter().map(|p| p.x).collect()
    }

    /// Solves every point and returns the full per-point solutions.
    pub fn run(&self) -> SweepResult<ClusterSolution> {
        self.run_map(|sol| sol.clone())
    }

    /// Solves every point and projects each solution through `f`
    /// inside the worker (so full solutions are never retained).
    pub fn run_map<T, F>(&self, f: F) -> SweepResult<T>
    where
        T: Send,
        F: Fn(&ClusterSolution) -> T + Sync,
    {
        let ctx = ExecContext::new(self);
        let out = self.execute(&ctx, |i, worker| {
            let point = &self.points[i];
            let _span = performa_obs::span_with(
                "sweep.point",
                vec![
                    ("axis", self.label.into()),
                    ("index", i.into()),
                    ("x", point.x.into()),
                ],
            );
            let started = Instant::now();
            let mut cost = PointCost::default();
            let outcome = ctx.solve_point(point, i, worker, &mut cost);
            cost.elapsed = started.elapsed();
            if outcome.is_ok() && cost.source != CostSource::Store {
                // Feed the budget's cost EWMA with real solve times only
                // — store replays are microseconds and say nothing about
                // what an unsolved point will cost.
                ctx.record_budget(cost.elapsed);
            }
            ctx.record_cost(i, cost);
            let sol = outcome?;
            Ok(f(&sol))
        });
        ctx.finish(out)
    }

    /// Maps every point's *model* through `f` on the worker pool
    /// without solving — for analytic per-point work such as the
    /// blow-up threshold tables.
    pub fn map_models<T, F>(&self, f: F) -> SweepResult<T>
    where
        T: Send,
        F: Fn(&ClusterModel) -> Result<T> + Sync,
    {
        let ctx = ExecContext::new(self);
        let out = self.execute(&ctx, |i, _worker| {
            let point = &self.points[i];
            let _span = performa_obs::span_with(
                "sweep.point",
                vec![
                    ("axis", self.label.into()),
                    ("index", i.into()),
                    ("x", point.x.into()),
                ],
            );
            let started = Instant::now();
            let outcome = match &point.model {
                Ok(model) => f(model),
                Err(msg) => Err(CoreError::InvalidParameter {
                    message: msg.clone(),
                }),
            };
            ctx.record_cost(
                i,
                PointCost {
                    elapsed: started.elapsed(),
                    ..PointCost::default()
                },
            );
            outcome
        });
        ctx.finish(out)
    }

    /// Work-stealing execution over the point indices with index-ordered
    /// collection — the worker pattern of `performa_sim::replicate`.
    fn execute<T, F>(&self, ctx: &ExecContext<'_>, job: F) -> Vec<(f64, Result<T>)>
    where
        T: Send,
        F: Fn(usize, &mut WorkerState) -> Result<T> + Sync,
    {
        enum Slot<T> {
            Pending,
            Done(Result<T>),
        }
        let n = self.points.len();
        let threads = effective_threads(self.options.threads, n);
        if let Some(kt) = self.options.kernel_threads {
            performa_linalg::threading::set_threads(kt);
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Slot<T>> = (0..n).map(|_| Slot::Pending).collect();
        let slots_mx = Mutex::new(&mut slots);

        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut worker = WorkerState::default();
                    loop {
                        // Cancellation / budget-exhaustion checkpoint:
                        // once the run is stopping no further points are
                        // issued — their slots stay `Pending` and are
                        // reported as `Cancelled` below.
                        if ctx.should_stop() {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        // One bad point must not kill the sweep: typed
                        // errors flow into the slot, and a panic in the
                        // solver is captured the same way.
                        let out = catch_unwind(AssertUnwindSafe(|| job(i, &mut worker)))
                            .unwrap_or_else(|payload| {
                                Err(CoreError::InvalidParameter {
                                    message: format!(
                                        "sweep point {i} panicked: {}",
                                        panic_message(payload.as_ref())
                                    ),
                                })
                            });
                        let mut guard =
                            slots_mx.lock().unwrap_or_else(|poison| poison.into_inner());
                        guard[i] = Slot::Done(out);
                    }
                });
            }
        });

        let stopped = ctx.stopped();
        slots
            .into_iter()
            .zip(&self.points)
            .map(|(slot, point)| match slot {
                Slot::Done(out) => (point.x, out),
                Slot::Pending if stopped => (point.x, Err(CoreError::Cancelled)),
                Slot::Pending => (
                    point.x,
                    Err(CoreError::InvalidParameter {
                        message: "sweep point was never executed".to_string(),
                    }),
                ),
            })
            .collect()
    }
}

fn effective_threads(requested: usize, points: usize) -> usize {
    let requested = if requested == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        requested
    };
    requested.clamp(1, points.max(1))
}

/// Solver failures that earn the one hardened retry of the ladder:
/// numerical breakdowns and exhausted iteration budgets. Everything
/// else (bad blocks, instability, deadlines) retries identically and
/// is not worth a second attempt.
fn retryable(e: &QbdError) -> bool {
    matches!(
        e,
        QbdError::NumericalBreakdown { .. } | QbdError::NoConvergence { .. }
    )
}

/// The persisted failure class of a point error — `None` for
/// deterministic model-level errors (bad parameters, instability),
/// which recompute for free and never enter the store log, and for
/// [`CoreError::Cancelled`]: a cancelled point was never diagnosed, so
/// persisting it would make the resumed run replay a phantom failure.
fn failure_kind(e: &CoreError) -> Option<&'static str> {
    match e {
        CoreError::Qbd(QbdError::NumericalBreakdown { .. }) => Some("numerical_breakdown"),
        CoreError::Qbd(QbdError::NoConvergence { .. }) => Some("no_convergence"),
        CoreError::Qbd(QbdError::DeadlineExceeded { .. }) => Some("deadline_exceeded"),
        CoreError::Qbd(QbdError::Linalg(_)) => Some("linalg"),
        CoreError::Quarantined { .. } => Some("quarantined"),
        _ => None,
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Per-worker mutable state: the last converged `G` of this worker,
/// used as the warm-start seed of its next claimed point.
#[derive(Default)]
struct WorkerState {
    last_g: Option<Matrix>,
}

/// Shared execution context of one run: the modulator cache and the
/// run's counters.
struct ExecContext<'a> {
    plan: &'a SweepPlan,
    /// One cell per fingerprint group; the first point of a group
    /// builds, later points reuse the `Arc`.
    modulators: Vec<OnceLock<std::result::Result<Arc<Mmpp>, String>>>,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    warm_accepted: AtomicU64,
    warm_rejected: AtomicU64,
    store_hits: AtomicU64,
    store_appends: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    /// Whole-run deadline budget, when the plan has one.
    budget: Option<RunBudget>,
    /// Latched once a worker observes cancellation or budget
    /// exhaustion; unissued slots then map to [`CoreError::Cancelled`].
    stopped: AtomicBool,
    /// Per-point cost records, indexed by grid position; workers write
    /// their slot once, after solving.
    costs: Mutex<Vec<PointCost>>,
    started: Instant,
}

impl<'a> ExecContext<'a> {
    fn new(plan: &'a SweepPlan) -> Self {
        ExecContext {
            plan,
            modulators: (0..plan.groups).map(|_| OnceLock::new()).collect(),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            warm_accepted: AtomicU64::new(0),
            warm_rejected: AtomicU64::new(0),
            store_hits: AtomicU64::new(0),
            store_appends: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            budget: plan.options.run_budget.map(RunBudget::new),
            stopped: AtomicBool::new(false),
            costs: Mutex::new(vec![PointCost::default(); plan.points.len()]),
            started: Instant::now(),
        }
    }

    /// Stores the cost record of point `i`.
    fn record_cost(&self, i: usize, cost: PointCost) {
        let mut costs = self.costs.lock().unwrap_or_else(|p| p.into_inner());
        costs[i] = cost;
    }

    /// Feeds one real solve duration into the budget's cost EWMA.
    fn record_budget(&self, elapsed: Duration) {
        if let Some(budget) = &self.budget {
            budget.record(elapsed);
        }
    }

    /// Whether the run is stopping (token tripped or budget exhausted).
    /// Checked by every worker before pulling the next point; the first
    /// observation latches the stop, emits the cancellation event and
    /// dumps the flight recorder for the post-mortem.
    fn should_stop(&self) -> bool {
        if self.stopped.load(Ordering::Relaxed) {
            return true;
        }
        if self
            .plan
            .options
            .cancel
            .as_ref()
            .is_some_and(CancelToken::is_cancelled)
        {
            self.mark_stopped("cancelled");
            return true;
        }
        if self.budget.as_ref().is_some_and(RunBudget::exhausted) {
            self.mark_stopped("budget_exhausted");
            return true;
        }
        false
    }

    /// Whether a stop was observed at any time during the run.
    fn stopped(&self) -> bool {
        self.stopped.load(Ordering::Relaxed)
    }

    /// Latches the stop flag; the first caller records why.
    fn mark_stopped(&self, reason: &'static str) {
        if !self.stopped.swap(true, Ordering::Relaxed) {
            performa_obs::event(
                performa_obs::TraceLevel::Warn,
                "sweep.stopping",
                vec![("axis", self.plan.label.into()), ("reason", reason.into())],
            );
            performa_obs::flight::dump("sweep_cancelled");
        }
    }

    /// The deadline for one point attempt: the fixed per-point deadline
    /// and/or a fresh budget allotment, whichever is tighter. An
    /// exhausted budget latches the stop and cancels the point.
    fn point_deadline(&self, index: usize) -> Result<Option<Instant>> {
        let fixed = self
            .plan
            .options
            .point_deadline
            .map(|d| Instant::now() + d);
        let Some(budget) = &self.budget else {
            return Ok(fixed);
        };
        // Points are issued in index order, so the unissued remainder of
        // the grid is a good estimate of how many ways the remaining
        // budget must still stretch.
        let points_left = self.plan.points.len().saturating_sub(index).max(1);
        match budget.allot(points_left) {
            Some(granted) => Ok(Some(fixed.map_or(granted, |f| f.min(granted)))),
            None => {
                self.mark_stopped("budget_exhausted");
                Err(CoreError::Cancelled)
            }
        }
    }

    /// Counts and reports a quarantined point: the per-point deadline
    /// tripped on both the first attempt and the hardened retry.
    fn quarantine(&self, x: f64, first: &QbdError, second: &QbdError) -> CoreError {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        performa_obs::counter_add("sweep.quarantined", 1);
        performa_obs::event(
            performa_obs::TraceLevel::Warn,
            "sweep.quarantined",
            vec![("axis", self.plan.label.into()), ("x", x.into())],
        );
        CoreError::Quarantined {
            message: format!("first attempt: {first}; hardened retry: {second}"),
        }
    }

    /// The lumped MMPP for this point, through the cache when enabled.
    /// The cached object is bit-identical to a fresh
    /// [`ClusterModel::service_process`], so the cache never changes
    /// results — only skips rebuilding.
    fn modulator(&self, point: &PlanPoint, model: &ClusterModel) -> Result<Arc<Mmpp>> {
        let cell = &self.modulators[point.group];
        if let Some(cached) = cell.get() {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            performa_obs::counter_add("sweep.cache_hit", 1);
            return cached.clone().map_err(|message| CoreError::InvalidParameter { message });
        }
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        let built = model
            .service_process()
            .map(Arc::new)
            .map_err(|e| e.to_string());
        // Two workers may race on the first points of a group; both
        // build the same bits, and whichever `set` wins is equivalent.
        let _ = cell.set(built.clone());
        built.map_err(|message| CoreError::InvalidParameter { message })
    }

    /// Solves one point: the durable store first (a hit replays the
    /// persisted solution without touching the solver), then modulator
    /// (cached) and `G`/`R`/boundary via warm start, supervisor, or the
    /// plain bit-identical default path; fresh outcomes are appended
    /// back to the store.
    fn solve_point(
        &self,
        point: &PlanPoint,
        index: usize,
        worker: &mut WorkerState,
        cost: &mut PointCost,
    ) -> Result<ClusterSolution> {
        let model = match &point.model {
            Ok(m) => m,
            Err(msg) => {
                return Err(CoreError::InvalidParameter {
                    message: msg.clone(),
                })
            }
        };
        // Same stability gate as `ClusterModel::solve`, so failed points
        // carry the same typed error the serial loop produced. Running
        // it before the store consult keeps deterministic model-level
        // errors out of the log entirely.
        if model.arrival_rate() >= model.capacity() {
            return Err(CoreError::Unstable {
                lambda: model.arrival_rate(),
                capacity: model.capacity(),
            });
        }
        let Some(store) = &self.plan.options.store else {
            return self.solve_point_fresh(point, model, index, worker, cost);
        };
        let key = store_key(model, point.x);
        match store.get(&key) {
            Some(PointRecord::Solved { m, pi0, pi1, r, g }) => {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                cost.source = CostSource::Store;
                cost.strategy = "replay";
                self.replay_solved(model, m as usize, pi0, pi1, r, g)
            }
            Some(PointRecord::Failed { kind, message }) if !self.plan.options.retry_failed => {
                self.store_hits.fetch_add(1, Ordering::Relaxed);
                cost.source = CostSource::Store;
                cost.strategy = "replay";
                Err(CoreError::ReplayedFailure { kind, message })
            }
            _ => {
                let outcome = self.solve_point_fresh(point, model, index, worker, cost);
                self.persist(store, &key, &outcome)?;
                outcome
            }
        }
    }

    /// Rebuilds a [`ClusterSolution`] from a persisted solved record.
    /// The stored vectors carry the exact bits of the original solve,
    /// and [`QbdSolution::from_parts`] recomputes the derived caches
    /// through the same deterministic path — so every metric read off
    /// the replayed solution is bit-identical to the original.
    fn replay_solved(
        &self,
        model: &ClusterModel,
        m: usize,
        pi0: Vec<f64>,
        pi1: Vec<f64>,
        r: Vec<f64>,
        g: Vec<f64>,
    ) -> Result<ClusterSolution> {
        if pi0.len() != m || pi1.len() != m {
            return Err(CoreError::Store {
                message: format!(
                    "stored record is inconsistent: m = {m} but boundary vectors have {} / {} \
                     entries",
                    pi0.len(),
                    pi1.len()
                ),
            });
        }
        let to_matrix = |data: Vec<f64>, name: &str| {
            Matrix::from_vec(m, m, data).map_err(|e| CoreError::Store {
                message: format!("stored {name} matrix malformed: {e}"),
            })
        };
        let r = to_matrix(r, "R")?;
        let g = to_matrix(g, "G")?;
        let sol = QbdSolution::from_parts(Vector::from(pi0), Vector::from(pi1), r, g)
            .map_err(CoreError::from)?;
        Ok(ClusterSolution::new(model.clone(), sol))
    }

    /// Appends a fresh point outcome to the store. Solved points are
    /// always persisted; failures only when they are solver-stage
    /// errors (see [`failure_kind`]) — deterministic model-level errors
    /// recompute for free and never enter the log.
    fn persist(
        &self,
        store: &StoreHandle,
        key: &PointKey,
        outcome: &Result<ClusterSolution>,
    ) -> Result<()> {
        let record = match outcome {
            Ok(sol) => {
                let q = sol.qbd();
                PointRecord::Solved {
                    m: q.phase_dim() as u32,
                    pi0: q.pi0().as_slice().to_vec(),
                    pi1: q.pi1().as_slice().to_vec(),
                    r: q.r_matrix().as_slice().to_vec(),
                    g: q.g_matrix().as_slice().to_vec(),
                }
            }
            Err(e) => match failure_kind(e) {
                Some(kind) => PointRecord::Failed {
                    kind: kind.to_string(),
                    message: e.to_string(),
                },
                None => return Ok(()),
            },
        };
        store.append(key, &record).map_err(|e| CoreError::Store {
            message: e.to_string(),
        })?;
        self.store_appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The pre-store solve path: modulator (cached), then supervisor,
    /// warm start, or the plain cold solve with its bounded
    /// retry-with-hardening ladder. Per-point deadlines and the cancel
    /// token are threaded into whichever solver runs; a point that
    /// trips its deadline twice (first attempt + hardened retry under a
    /// fresh allotment) is quarantined.
    fn solve_point_fresh(
        &self,
        point: &PlanPoint,
        model: &ClusterModel,
        index: usize,
        worker: &mut WorkerState,
        cost: &mut PointCost,
    ) -> Result<ClusterSolution> {
        let qbd = if self.plan.options.reuse_modulator && point.group != usize::MAX {
            let mmpp = self.modulator(point, model)?;
            Qbd::m_mmpp1(model.arrival_rate(), mmpp.generator(), mmpp.rates())
                .map_err(CoreError::from)?
        } else {
            model.to_qbd()?
        };
        let cancel = self.plan.options.cancel.clone();
        let deadline = self.point_deadline(index)?;

        if let Some(sup) = &self.plan.options.supervisor {
            cost.source = CostSource::Supervisor;
            let attempt = |deadline: Option<Instant>,
                           cost: &mut PointCost|
             -> Result<ClusterSolution> {
                let mut opts = sup.clone();
                if let Some(token) = cancel.clone() {
                    opts = opts.with_cancel(token);
                }
                if let Some(d) = deadline {
                    let grant = d.saturating_duration_since(Instant::now());
                    opts.deadline = Some(opts.deadline.map_or(grant, |user| user.min(grant)));
                }
                let (sol, report) = SolverSupervisor::with_options(qbd.clone(), opts).solve()?;
                cost.strategy = report.strategy.key();
                cost.iterations += report.total_iterations as u64;
                Ok(ClusterSolution::new(model.clone(), sol))
            };
            return match attempt(deadline, cost) {
                Err(CoreError::Qbd(QbdError::Cancelled { .. })) => Err(CoreError::Cancelled),
                Err(CoreError::Qbd(first @ QbdError::DeadlineExceeded { .. }))
                    if deadline.is_some() =>
                {
                    // The supervisor already escalates hardening
                    // internally; the retry's value is the fresh
                    // allotment (the first one may have been starved by
                    // a noisy EWMA or a contended pool).
                    match attempt(self.point_deadline(index)?, cost) {
                        Err(CoreError::Qbd(ref second @ QbdError::DeadlineExceeded { .. })) => {
                            Err(self.quarantine(point.x, &first, second))
                        }
                        Err(CoreError::Qbd(QbdError::Cancelled { .. })) => {
                            Err(CoreError::Cancelled)
                        }
                        other => other,
                    }
                }
                other => other,
            };
        }

        if self.plan.options.warm_start {
            if let Some(sol) = self.try_warm(&qbd, model, deadline, &cancel, worker, cost)? {
                return Ok(sol);
            }
        }

        // Cold path — exactly `ClusterModel::solve`'s solver invocation.
        // A numerical failure earns one retry with the hardened option
        // set before the error is allowed to stand: near the blow-up
        // thresholds the default-tolerance solve occasionally breaks
        // down where the hardened schedule still converges. The retry
        // can only turn an error into a solution, so bit-identity of
        // successful points is unaffected.
        cost.source = CostSource::Cold;
        cost.strategy = "logred";
        let interruptible = |mut opts: SolveOptions, deadline: Option<Instant>| {
            opts.deadline = deadline;
            opts.cancel = cancel.clone();
            opts
        };
        let sol = match qbd.solve_with_count(interruptible(SolveOptions::default(), deadline)) {
            Ok((sol, iters)) => {
                cost.iterations = iters as u64;
                sol
            }
            Err(QbdError::Cancelled { .. }) => return Err(CoreError::Cancelled),
            Err(first @ QbdError::DeadlineExceeded { .. }) if deadline.is_some() => {
                // First deadline trip: one hardened retry under a fresh
                // allotment. A second trip quarantines the point — it
                // is persisted as a failure so a resumed run does not
                // re-block a pool thread on it.
                self.retries.fetch_add(1, Ordering::Relaxed);
                performa_obs::counter_add("sweep.retry", 1);
                cost.source = CostSource::Retry;
                let retry_deadline = self.point_deadline(index)?;
                match qbd.solve_with_count(interruptible(SolveOptions::hardened(), retry_deadline))
                {
                    Ok((sol, iters)) => {
                        cost.iterations += iters as u64;
                        sol
                    }
                    Err(QbdError::Cancelled { .. }) => return Err(CoreError::Cancelled),
                    Err(ref second @ QbdError::DeadlineExceeded { .. }) => {
                        return Err(self.quarantine(point.x, &first, second))
                    }
                    Err(second) => return Err(second.into()),
                }
            }
            Err(e) if retryable(&e) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                performa_obs::counter_add("sweep.retry", 1);
                cost.source = CostSource::Retry;
                let retry_deadline = self.point_deadline(index)?;
                let (sol, iters) = qbd
                    .solve_with_count(interruptible(SolveOptions::hardened(), retry_deadline))
                    .map_err(|e| match e {
                        QbdError::Cancelled { .. } => CoreError::Cancelled,
                        other => other.into(),
                    })?;
                cost.iterations = iters as u64;
                sol
            }
            Err(e) => return Err(e.into()),
        };
        if self.plan.options.warm_start {
            worker.last_g = Some(sol.g_matrix().clone());
        }
        Ok(ClusterSolution::new(model.clone(), sol))
    }

    /// Attempts a warm-started solve from the worker's previous `G`.
    /// Returns `Ok(None)` (after counting the rejection) when there is
    /// no usable seed, the seeded iteration fails to converge within
    /// the budget, or the converged candidate's residual is above the
    /// acceptance threshold — the caller then cold-starts. A
    /// cancellation aborts outright (`Err`); a deadline trip rejects
    /// like any other warm failure, so the cold attempt trips the same
    /// already-expired deadline at its first check and the quarantine
    /// ladder proceeds normally.
    fn try_warm(
        &self,
        qbd: &Qbd,
        model: &ClusterModel,
        deadline: Option<Instant>,
        cancel: &Option<CancelToken>,
        worker: &mut WorkerState,
        cost: &mut PointCost,
    ) -> Result<Option<ClusterSolution>> {
        let Some(seed) = worker
            .last_g
            .as_ref()
            .filter(|g| g.nrows() == qbd.phase_dim())
        else {
            return Ok(None);
        };
        let mut opts = SolveOptions::default()
            .with_initial_g(seed.clone())
            .tap_budget(self.plan.options.warm_budget);
        opts.deadline = deadline;
        opts.cancel = cancel.clone();
        let (g, warm_iters) = match qbd.g_matrix_functional_with_count(opts) {
            Ok(pair) => pair,
            Err(QbdError::Cancelled { .. }) => return Err(CoreError::Cancelled),
            Err(_) => {
                self.warm_rejected.fetch_add(1, Ordering::Relaxed);
                return Ok(None);
            }
        };
        let scale = qbd.a0().norm_inf() + qbd.a1().norm_inf() + qbd.a2().norm_inf();
        // NaN residuals must reject, hence the explicit is_nan arm.
        let residual = qbd.g_residual(&g);
        if residual.is_nan() || residual > WARM_ACCEPT_TOL * scale {
            self.warm_rejected.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        }
        self.warm_accepted.fetch_add(1, Ordering::Relaxed);
        performa_obs::counter_add("sweep.warm_start_accepted", 1);
        worker.last_g = Some(g.clone());
        let Ok(sol) = qbd.solve_from_g(g, performa_qbd::Hardening::default()) else {
            return Ok(None);
        };
        cost.source = CostSource::Warm;
        cost.strategy = "functional";
        cost.iterations = warm_iters as u64;
        Ok(Some(ClusterSolution::new(model.clone(), sol)))
    }

    /// Assembles the ordered results and the run statistics, flushes
    /// the store, and emits the run-level gauges.
    fn finish<T>(self, mut out: Vec<(f64, Result<T>)>) -> SweepResult<T> {
        if let Some(store) = &self.plan.options.store {
            // End-of-run durability point: batched appends hit disk
            // here. A flush failure is surfaced on the first
            // otherwise-successful point rather than silently dropped.
            if let Err(e) = store.flush() {
                if let Some(slot) = out.iter_mut().find(|(_, r)| r.is_ok()) {
                    slot.1 = Err(CoreError::Store {
                        message: format!("final flush failed: {e}"),
                    });
                }
            }
        }
        let elapsed = self.started.elapsed();
        let solved = out.iter().filter(|(_, r)| r.is_ok()).count();
        let cancelled = out
            .iter()
            .filter(|(_, r)| matches!(r, Err(CoreError::Cancelled)))
            .count();
        let costs = match self.costs.lock() {
            Ok(mut guard) => std::mem::take(&mut *guard),
            Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
        };
        let stats = SweepStats {
            points: out.len(),
            solved,
            failed: out.len() - solved,
            cancelled,
            quarantined: self.quarantined.load(Ordering::Relaxed) as usize,
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            warm_accepted: self.warm_accepted.load(Ordering::Relaxed),
            warm_rejected: self.warm_rejected.load(Ordering::Relaxed),
            store_hits: self.store_hits.load(Ordering::Relaxed),
            store_appends: self.store_appends.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            total_iterations: costs.iter().map(|c| c.iterations).sum(),
            threads: effective_threads(self.plan.options.threads, out.len()),
            elapsed,
        };
        if stats.cancelled > 0 {
            performa_obs::counter_add("sweep.cancelled", stats.cancelled as u64);
        }
        performa_obs::gauge_set("sweep.points_per_sec", stats.points_per_sec());
        let points = out
            .into_iter()
            .zip(costs)
            .map(|((x, outcome), cost)| SweepPoint { x, outcome, cost })
            .collect();
        SweepResult { points, stats }
    }
}

/// Extension used internally to cap a warm attempt's budget.
trait TapBudget {
    fn tap_budget(self, budget: usize) -> Self;
}

impl TapBudget for SolveOptions {
    fn tap_budget(mut self, budget: usize) -> Self {
        self.max_iterations = budget.max(1);
        self
    }
}

/// Which solve path produced (or failed to produce) a point's result —
/// together with [`PointCost::iterations`] the feature inputs for an
/// adaptive sweep scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostSource {
    /// No solver ran: model-level error, or an analytic
    /// [`SweepPlan::map_models`] pass.
    #[default]
    Skipped,
    /// Replayed bit-exactly from the durable result store.
    Store,
    /// Warm-started functional iteration accepted by the residual gate.
    Warm,
    /// Cold solve on the default path (logarithmic reduction).
    Cold,
    /// Cold solve that needed the hardened retry of the ladder.
    Retry,
    /// Solved through the supervisor fallback chain.
    Supervisor,
}

impl CostSource {
    /// Short stable label (`store`, `warm`, `cold`, `retry`,
    /// `supervisor`, `skipped`).
    pub fn label(&self) -> &'static str {
        match self {
            CostSource::Skipped => "skipped",
            CostSource::Store => "store",
            CostSource::Warm => "warm",
            CostSource::Cold => "cold",
            CostSource::Retry => "retry",
            CostSource::Supervisor => "supervisor",
        }
    }
}

/// Per-point solve cost record: wall clock, solver iterations, the
/// `G`-strategy used and the path the result came from.
#[derive(Debug, Clone, Copy, Default)]
pub struct PointCost {
    /// Wall clock spent on this point (including store/cache work).
    pub elapsed: Duration,
    /// Solver `G`-stage iterations (0 for replayed or analytic points).
    pub iterations: u64,
    /// `G`-strategy key (`logred`, `neuts`, `functional`, `replay`, or
    /// empty when no solver ran).
    pub strategy: &'static str,
    /// The path that produced the outcome.
    pub source: CostSource,
}

/// One executed grid point: its coordinate, the typed outcome and the
/// solve cost record.
#[derive(Debug)]
pub struct SweepPoint<T> {
    /// The grid coordinate this point was solved at.
    pub x: f64,
    /// The projected result, or the typed per-point error.
    pub outcome: Result<T>,
    /// What the point cost and which path produced it.
    pub cost: PointCost,
}

/// Run statistics of a sweep, including both caching layers' hit
/// counters.
#[derive(Debug, Clone, Default)]
pub struct SweepStats {
    /// Total grid points.
    pub points: usize,
    /// Points that produced a value.
    pub solved: usize,
    /// Points that recorded a typed error.
    pub failed: usize,
    /// Points that were never solved because the run was cancelled or
    /// its budget ran out (a subset of `failed`). These points are not
    /// persisted — a resumed run re-solves exactly this gap.
    pub cancelled: usize,
    /// Points quarantined by this run: the per-point deadline tripped
    /// on both the first attempt and the hardened retry, and the
    /// failure was persisted so a resume replays it instead of
    /// re-blocking a pool thread (a subset of `failed`).
    pub quarantined: usize,
    /// Modulator-cache hits (points that reused a lumped MMPP).
    pub cache_hits: u64,
    /// Modulator-cache misses (points that built a lumped MMPP).
    pub cache_misses: u64,
    /// Warm-started `G` solves accepted by the residual test.
    pub warm_accepted: u64,
    /// Warm attempts that fell back to a cold solve.
    pub warm_rejected: u64,
    /// Points replayed from the durable result store (solved records
    /// and non-retried failure records alike).
    pub store_hits: u64,
    /// Fresh outcomes appended to the durable result store.
    pub store_appends: u64,
    /// Cold solves that took the hardened retry of the ladder.
    pub retries: u64,
    /// Summed solver `G`-stage iterations across all points.
    pub total_iterations: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Wall clock of the run.
    pub elapsed: Duration,
}

impl SweepStats {
    /// Whether the run stopped early (cancellation or budget
    /// exhaustion) and these are partial results — the condition under
    /// which a CLI run exits with [`crate::EXIT_PARTIAL`].
    pub fn interrupted(&self) -> bool {
        self.cancelled > 0
    }

    /// Throughput over the whole run.
    pub fn points_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.points as f64 / secs
        } else {
            f64::INFINITY
        }
    }
}

/// Index-ordered results of a sweep: one [`SweepPoint`] per grid point
/// plus the run's [`SweepStats`].
#[derive(Debug)]
pub struct SweepResult<T> {
    points: Vec<SweepPoint<T>>,
    stats: SweepStats,
}

impl<T> SweepResult<T> {
    /// The per-point outcomes, in grid order.
    pub fn points(&self) -> &[SweepPoint<T>] {
        &self.points
    }

    /// Consumes the result into its per-point outcomes.
    pub fn into_points(self) -> Vec<SweepPoint<T>> {
        self.points
    }

    /// The run statistics.
    pub fn stats(&self) -> &SweepStats {
        &self.stats
    }

    /// The values in grid order, panicking on the first failed point
    /// with its coordinate and typed error — the moral equivalent of
    /// the serial loops' `.expect(context)`.
    ///
    /// # Panics
    ///
    /// If any point failed.
    pub fn expect_values(self, context: &str) -> Vec<T> {
        self.points
            .into_iter()
            .map(|p| match p.outcome {
                Ok(v) => v,
                Err(e) => panic!("{context}: sweep point x = {} failed: {e}", p.x),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use performa_dist::Exponential;

    /// Small, fast paper-style cluster (T = 3 keeps the phase dimension
    /// at 10, so debug-mode solves stay cheap).
    fn cluster(t: u32, rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(t, 1.4, 0.2, 10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn grid_linear_and_refine_matches_legacy_rho_grid() {
        // The exact numbers `rho_grid(0.1, 0.9, 8, &[0.5])` produced.
        let grid = Grid::linear(0.1, 0.9, 8).refine_near(&[0.5]);
        let mut expected: Vec<f64> = (0..=8).map(|i| 0.1 + 0.8 * i as f64 / 8.0).collect();
        for eps in [-0.02, -0.005, 0.005, 0.02] {
            let x = 0.5 + eps;
            if x > 0.1 && x < 0.9 {
                expected.push(x);
            }
        }
        expected.sort_by(|a, b| a.partial_cmp(b).unwrap());
        expected.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        assert_eq!(grid.values(), expected.as_slice());
    }

    #[test]
    fn parallel_equals_serial_bitwise() {
        let grid = Grid::linear(0.1, 0.9, 7).into_values();
        let template = cluster(3, 0.5);

        // Ground truth: the historical serial loop.
        let serial: Vec<u64> = grid
            .iter()
            .map(|&rho| {
                template
                    .with_utilization(rho)
                    .unwrap()
                    .solve()
                    .unwrap()
                    .normalized_mean_queue_length()
                    .to_bits()
            })
            .collect();

        for threads in [1usize, 4] {
            let res = Scenario::new(template.clone(), Axis::Rho(grid.clone()))
                .compile()
                .with_options(SweepOptions {
                    threads,
                    ..SweepOptions::default()
                })
                .run_map(|sol| sol.normalized_mean_queue_length());
            let engine: Vec<u64> = res
                .expect_values("stable grid")
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(engine, serial, "threads = {threads} must be bit-identical");
        }
    }

    #[test]
    fn modulator_cache_hits_on_rho_sweeps_and_respects_opt_out() {
        let grid = Grid::linear(0.2, 0.8, 5).into_values();
        let n = grid.len();
        let plan = Scenario::new(cluster(3, 0.5), Axis::Rho(grid.clone())).compile();

        let cached = plan
            .clone()
            .with_options(SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            })
            .run_map(|sol| sol.mean_queue_length());
        assert_eq!(cached.stats().cache_misses, 1);
        assert_eq!(cached.stats().cache_hits, (n - 1) as u64);

        let uncached = plan
            .with_options(SweepOptions {
                threads: 1,
                reuse_modulator: false,
                ..SweepOptions::default()
            })
            .run_map(|sol| sol.mean_queue_length());
        assert_eq!(uncached.stats().cache_hits, 0);

        let a: Vec<u64> = cached
            .expect_values("stable")
            .into_iter()
            .map(f64::to_bits)
            .collect();
        let b: Vec<u64> = uncached
            .expect_values("stable")
            .into_iter()
            .map(f64::to_bits)
            .collect();
        assert_eq!(a, b, "modulator cache must not change bits");
    }

    #[test]
    fn warm_start_agrees_with_cold_across_rho1_threshold() {
        // Grid straddling the first blow-up threshold ρ₁ = 0.6087 of
        // the N = 2, δ = 0.2, A = 0.9 base cluster.
        let grid = Grid::linear(0.58, 0.64, 6).refine_near(&[0.6087]).into_values();
        let plan = Scenario::new(cluster(4, 0.5), Axis::Rho(grid)).compile();

        let cold = plan
            .clone()
            .with_options(SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            })
            .run();
        let warm = plan
            .with_options(SweepOptions {
                threads: 1,
                warm_start: true,
                ..SweepOptions::default()
            })
            .run();
        assert!(
            warm.stats().warm_accepted >= 1,
            "warm starts should be accepted on a fine grid, stats = {:?}",
            warm.stats()
        );
        for (c, w) in cold.points().iter().zip(warm.points()) {
            let (c, w) = (c.outcome.as_ref().unwrap(), w.outcome.as_ref().unwrap());
            let dg = c.qbd().g_matrix().max_abs_diff(w.qbd().g_matrix());
            assert!(dg <= 1e-10, "G agreement at x = {}: ‖ΔG‖ = {dg:.3e}", 0);
            let dm = (c.mean_queue_length() - w.mean_queue_length()).abs();
            assert!(dm <= 1e-8, "metric agreement: Δ = {dm:.3e}");
        }
    }

    #[test]
    fn bad_point_does_not_kill_the_sweep() {
        // ρ = 1.2 is unstable; ρ ≤ 0 cannot even build a model.
        let plan = Scenario::new(
            cluster(3, 0.5),
            Axis::Rho(vec![0.4, 1.2, -0.5, 0.6]),
        )
        .compile();
        let res = plan.run_map(|sol| sol.mean_queue_length());
        assert_eq!(res.stats().points, 4);
        assert_eq!(res.stats().solved, 2);
        assert_eq!(res.stats().failed, 2);
        assert!(res.points()[0].outcome.is_ok());
        assert!(matches!(
            res.points()[1].outcome,
            Err(CoreError::Unstable { .. })
        ));
        assert!(res.points()[2].outcome.is_err());
        assert!(res.points()[3].outcome.is_ok());
    }

    #[test]
    fn cache_hit_counter_reaches_memory_sink() {
        use performa_obs as obs;
        use std::sync::Arc;
        let _guard = obs::test_lock();
        let sink = Arc::new(obs::MemorySink::new());
        let id = obs::add_sink(sink.clone());
        obs::set_level(obs::TraceLevel::Debug);

        let grid = Grid::linear(0.3, 0.6, 3).into_values();
        let res = Scenario::new(cluster(3, 0.5), Axis::Rho(grid))
            .compile()
            .with_options(SweepOptions {
                threads: 1,
                ..SweepOptions::default()
            })
            .run_map(|sol| sol.mean_queue_length());

        obs::set_level(obs::TraceLevel::Off);
        obs::remove_sink(id);

        let hits = sink
            .records()
            .iter()
            .filter(|r| matches!(r, obs::Record::Metric { name, .. } if *name == "sweep.cache_hit"))
            .count() as u64;
        assert_eq!(hits, res.stats().cache_hits);
        assert!(hits > 0, "expected sweep.cache_hit metrics in the sink");
        let spans = sink
            .records()
            .iter()
            .filter(|r| matches!(r, obs::Record::SpanOpen { name, .. } if *name == "sweep.point"))
            .count();
        assert_eq!(spans, res.stats().points);
    }

    #[test]
    fn axes_transform_the_template_as_documented() {
        let template = cluster(3, 0.5);

        let lam = Scenario::new(template.clone(), Axis::Lambda(vec![1.0, 1.5])).compile();
        assert_eq!(lam.coordinates(), vec![1.0, 1.5]);

        let delta = Scenario::new(template.clone(), Axis::Delta(vec![0.0, 0.4]))
            .compile()
            .map_models(|m| Ok(m.degradation()))
            .expect_values("delta axis");
        assert_eq!(delta, vec![0.0, 0.4]);

        let avail = Scenario::new(template.clone(), Axis::Availability(vec![0.5, 0.9]))
            .compile()
            .map_models(|m| Ok(m.availability()))
            .expect_values("availability axis");
        assert!((avail[0] - 0.5).abs() < 1e-12 && (avail[1] - 0.9).abs() < 1e-12);

        let servers = Scenario::new(template.clone(), Axis::Servers(vec![1, 5]))
            .compile()
            .map_models(|m| Ok((m.servers(), m.utilization())))
            .expect_values("servers axis");
        assert_eq!(servers[0].0, 1);
        assert_eq!(servers[1].0, 5);
        assert!((servers[0].1 - 0.5).abs() < 1e-12);

        let orders = Scenario::new(template.clone(), Axis::TptOrder(vec![2, 5]))
            .compile()
            .map_models(|m| {
                Ok(match m.down() {
                    Dist::TruncatedPowerTail(t) => (t.truncation(), t.mean()),
                    _ => unreachable!(),
                })
            })
            .expect_values("tpt order axis");
        assert_eq!((orders[0].0, orders[1].0), (2, 5));
        assert!((orders[0].1 - 10.0).abs() < 1e-9);

        // TptOrder on a non-TPT repair distribution is a per-point error.
        let exp_down = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        let res = Scenario::new(exp_down, Axis::TptOrder(vec![2]))
            .compile()
            .map_models(|m| Ok(m.servers()));
        assert!(res.points()[0].outcome.is_err());
    }
}
