//! Blow-up point analysis (paper Sect. 3).
//!
//! With a high-variance repair distribution, long repair periods occur with
//! non-negligible probability. While `i` servers sit in such LONG repairs
//! simultaneously, the cluster's effective capacity drops to `ν_i`
//! (Eq. 3). Whenever the arrival rate exceeds `ν_i`, those episodes create
//! temporary oversaturation whose durations inherit the repair-time power
//! tail — producing a *blow-up*: a qualitative jump of the mean queue
//! length and queue tail at the utilization thresholds `ρ_i = ν_i/ν̄`
//! (Eq. 4), with queue-length tail exponent `β_i = i(α−1)+1`.
//!
//! This module computes the threshold rates, the region a configuration
//! falls in, the same boundaries expressed in availability (Eq. 5), and
//! the predicted tail exponents.

use crate::model::ClusterModel;

/// The qualitative operating regime of a cluster configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlowupRegion {
    /// `λ < ν_N`: even all `N` servers in LONG repair keep up with the
    /// arrivals; queue-length tails stay geometric and the model is
    /// insensitive to the repair-time shape beyond its mean.
    Insensitive,
    /// `ν_i < λ < ν_{i−1}`: at least `i` simultaneous LONG repairs cause
    /// oversaturation episodes; the queue-length pmf gains a (truncated)
    /// power tail with exponent `β_i = i(α−1)+1`. Lower `i` = heavier
    /// blow-up (the paper's rightmost region is `i = 1`).
    Region(usize),
}

/// Effective service rate while `i` of the `N` servers are in a LONG
/// repair period (paper Eq. 3):
/// `ν_i = (N−i)·ν_p·(A + δ(1−A)) + i·δ·ν_p`.
///
/// `ν_0 = ν̄` is the long-run capacity; `ν_N = N·δ·ν_p`.
///
/// # Panics
///
/// Panics if `i > N`.
pub fn degraded_rate(model: &ClusterModel, i: usize) -> f64 {
    let n = model.servers();
    assert!(i <= n, "cannot have {i} of {n} servers in long repair");
    let a = model.availability();
    let nu_p = model.peak_rate();
    let delta = model.degradation();
    (n - i) as f64 * nu_p * (a + delta * (1.0 - a)) + i as f64 * delta * nu_p
}

/// The utilization thresholds `ρ_i = ν_i/ν̄` for `i = 1..=N`, returned in
/// increasing order `ρ_N < … < ρ_1` (the vertical dotted lines of the
/// paper's Figure 1).
///
/// # Example
///
/// ```
/// use performa_core::{blowup, ClusterModel};
/// use performa_dist::Exponential;
///
/// let m = ClusterModel::builder()
///     .servers(2).peak_rate(2.0).degradation(0.2)
///     .up(Exponential::with_mean(90.0)?)
///     .down(Exponential::with_mean(10.0)?)
///     .utilization(0.5)
///     .build()?;
/// let t = blowup::utilization_thresholds(&m);
/// assert!((t[0] - 0.2174).abs() < 1e-3); // the paper's 21.7 %
/// assert!((t[1] - 0.6087).abs() < 1e-3); // and 60.9 %
/// # Ok::<(), performa_core::CoreError>(())
/// ```
pub fn utilization_thresholds(model: &ClusterModel) -> Vec<f64> {
    let nu_bar = model.capacity();
    (1..=model.servers())
        .rev()
        .map(|i| degraded_rate(model, i) / nu_bar)
        .collect()
}

/// Determines which blow-up region the model's current arrival rate falls
/// in (paper Eq. 4).
pub fn region(model: &ClusterModel) -> BlowupRegion {
    let lambda = model.arrival_rate();
    let n = model.servers();
    if lambda <= degraded_rate(model, n) {
        return BlowupRegion::Insensitive;
    }
    // Find the smallest i with ν_i < λ (ties resolve to the deeper region).
    for i in 1..=n {
        if lambda > degraded_rate(model, i) {
            return BlowupRegion::Region(i);
        }
    }
    BlowupRegion::Region(n)
}

/// Predicted power-tail exponent of the queue-length pmf in blow-up region
/// `i`, for repair tail exponent `alpha`: `β_i = i(α−1)+1`.
///
/// # Panics
///
/// Panics if `i == 0` (region 0 has a geometric, not power-law, tail).
pub fn queue_tail_exponent(i: usize, alpha: f64) -> f64 {
    assert!(i > 0, "region 0 has no power-law tail");
    i as f64 * (alpha - 1.0) + 1.0
}

/// Availability interval `(A_lo, A_hi)` for blow-up region `i` at fixed
/// arrival rate (paper Eq. 5):
///
/// ```text
/// (λ − N·ν_p·δ) / ((N−i+1)·ν_p·(1−δ))  <  A  <  (λ − N·ν_p·δ) / ((N−i)·ν_p·(1−δ))
/// ```
///
/// clipped to `[0, 1]`. Since `ν_i` grows with `A`, *low* availability
/// lands in the deep regions (small `i`); for `i = N` the upper bound is 1
/// (the `A < …` constraint is vacuous because `ν_N` does not depend on
/// `A`). The lower bound of region 1 coincides with the stability bound
/// (`ν_0 = ν̄`). Returns `None` when the region does not exist for this
/// arrival rate, which per the paper happens iff `λ ≤ N·ν_p·δ` (then even
/// fully-degraded capacity carries the load) or the interval is empty
/// after clipping.
///
/// # Panics
///
/// Panics if `i == 0` or `i > N`, or if `δ = 1` (no degradation ⇒ no
/// blow-up structure in `A`).
pub fn availability_interval(model: &ClusterModel, i: usize) -> Option<(f64, f64)> {
    let n = model.servers();
    assert!(i >= 1 && i <= n, "region index {i} out of 1..={n}");
    let delta = model.degradation();
    assert!(
        delta < 1.0,
        "delta = 1 removes degradation; no blow-up regions exist"
    );
    let lambda = model.arrival_rate();
    let nu_p = model.peak_rate();
    let excess = lambda - n as f64 * nu_p * delta;
    if excess <= 0.0 {
        return None;
    }
    let denom = nu_p * (1.0 - delta);
    // λ < ν_{i−1}(A)  ⇔  A > excess/((N−i+1)·denom)
    let lo = excess / ((n - i + 1) as f64 * denom);
    // ν_i(A) < λ  ⇔  A < excess/((N−i)·denom); vacuous for i = N.
    let hi = if i == n {
        1.0
    } else {
        excess / ((n - i) as f64 * denom)
    };
    let lo = lo.clamp(0.0, 1.0);
    let hi = hi.clamp(0.0, 1.0);
    if hi <= lo {
        None
    } else {
        Some((lo, hi))
    }
}

/// Minimum availability for stability at the model's arrival rate:
/// `λ < ν̄(A)` ⇔ `A > (λ/(N·ν_p) − δ)/(1 − δ)` (the vertical asymptote in
/// the paper's Figure 5).
///
/// Returns `0.0` when the cluster is stable even at `A = 0` and values
/// above `1.0` when no availability can stabilize it.
///
/// # Panics
///
/// Panics if `δ = 1` and the load exceeds the (constant) capacity.
pub fn stability_availability_bound(model: &ClusterModel) -> f64 {
    let n = model.servers() as f64;
    let nu_p = model.peak_rate();
    let delta = model.degradation();
    let ratio = model.arrival_rate() / (n * nu_p);
    if delta >= 1.0 {
        assert!(
            ratio < 1.0,
            "delta = 1: capacity is constant and below the offered load"
        );
        return 0.0;
    }
    ((ratio - delta) / (1.0 - delta)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::Exponential;

    fn model(n: usize, delta: f64, lambda: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(n)
            .peak_rate(2.0)
            .degradation(delta)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .arrival_rate(lambda)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_figure1_thresholds() {
        // N = 2, νp = 2, δ = 0.2, A = 0.9: the paper quotes 21.7 % and
        // 60.9 %.
        let m = model(2, 0.2, 1.0);
        assert!((degraded_rate(&m, 0) - 3.68).abs() < 1e-12);
        assert!((degraded_rate(&m, 1) - 2.24).abs() < 1e-12);
        assert!((degraded_rate(&m, 2) - 0.8).abs() < 1e-12);
        let t = utilization_thresholds(&m);
        assert_eq!(t.len(), 2);
        assert!((t[0] - 0.2174).abs() < 1e-4);
        assert!((t[1] - 0.6087).abs() < 1e-4);
    }

    #[test]
    fn rates_are_monotone() {
        let m = model(5, 0.2, 1.0);
        for i in 1..=5 {
            assert!(degraded_rate(&m, i) < degraded_rate(&m, i - 1));
        }
    }

    #[test]
    fn region_classification() {
        // ν2 = 0.8, ν1 = 2.24, ν̄ = 3.68.
        assert_eq!(region(&model(2, 0.2, 0.5)), BlowupRegion::Insensitive);
        assert_eq!(region(&model(2, 0.2, 1.5)), BlowupRegion::Region(2));
        assert_eq!(region(&model(2, 0.2, 3.0)), BlowupRegion::Region(1));
    }

    #[test]
    fn crash_cluster_always_blows_up() {
        // δ = 0 ⇒ ν_N = 0 ⇒ any positive load is in some blow-up region.
        let m = model(2, 0.0, 0.1);
        assert_ne!(region(&m), BlowupRegion::Insensitive);
    }

    #[test]
    fn tail_exponents() {
        assert!((queue_tail_exponent(1, 1.4) - 1.4).abs() < 1e-15);
        assert!((queue_tail_exponent(2, 1.4) - 1.8).abs() < 1e-15);
        assert!((queue_tail_exponent(3, 1.4) - 2.2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "region 0")]
    fn exponent_region_zero_panics() {
        let _ = queue_tail_exponent(0, 1.4);
    }

    #[test]
    fn availability_intervals_partition() {
        // Paper Fig. 5 setting: λ = 1.8, νp = 2, δ = 0.2, N = 2.
        let m = model(2, 0.2, 1.8);
        let r1 = availability_interval(&m, 1).unwrap();
        let r2 = availability_interval(&m, 2).unwrap();
        // Region 1 (worst) sits at low availability, starting exactly at
        // the stability bound 0.3125 and handing over to region 2 at
        // A = (1.8 − 0.8)/(1·2·0.8) = 0.625.
        assert!((r1.0 - 0.3125).abs() < 1e-12);
        assert!((r1.1 - 0.625).abs() < 1e-12);
        assert!((r2.0 - r1.1).abs() < 1e-12);
        // Region 2 extends all the way to A = 1: the paper notes the model
        // is "at least in the intermediate blow-up region" for any A < 1.
        assert!((r2.1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_blowup_when_load_below_degraded_capacity() {
        // λ ≤ N·νp·δ = 0.8: blow-up region 1 vanishes.
        let m = model(2, 0.2, 0.7);
        assert!(availability_interval(&m, 1).is_none());
        assert!(availability_interval(&m, 2).is_none());
    }

    #[test]
    fn stability_bound_matches_paper_figure5() {
        // λ = 1.8 ⇒ A > (1.8/4 − 0.2)/0.8 = 0.3125 (paper: "about 31 %").
        let m = model(2, 0.2, 1.8);
        assert!((stability_availability_bound(&m) - 0.3125).abs() < 1e-12);
        // Light load: stable even at A = 0.
        let m = model(2, 0.2, 0.5);
        assert_eq!(stability_availability_bound(&m), 0.0);
    }

    #[test]
    fn thresholds_scale_with_n() {
        let m = model(5, 0.2, 1.0);
        let t = utilization_thresholds(&m);
        assert_eq!(t.len(), 5);
        for w in t.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(t[4] < 1.0);
    }
}
