//! Nonexponential (matrix-exponential renewal) task arrivals — the first
//! extension of paper Sect. 2.4: an ME/MMPP/1 queue.
//!
//! The inter-arrival distribution `⟨p, B⟩` becomes the MAP
//! `(D₀, D₁) = (−B, (B·ε)·p)`; the QBD phase space is the product
//! (arrival phase × service phase), assembled with Kronecker products.

use performa_dist::{MatrixExp, Moments};
use performa_linalg::{kron, Matrix};
use performa_qbd::{mm1, Qbd, QbdSolution};

use crate::model::ClusterModel;
use crate::{CoreError, Result};

/// A cluster model driven by matrix-exponential renewal arrivals instead
/// of a Poisson stream.
///
/// The arrival *rate* is implied by the inter-arrival mean; the
/// [`ClusterModel`]'s own `arrival_rate` is ignored (only its service
/// side is used).
#[derive(Debug, Clone)]
pub struct MeArrivalCluster {
    model: ClusterModel,
    inter_arrival: MatrixExp,
}

impl MeArrivalCluster {
    /// Combines a cluster service model with an ME inter-arrival
    /// distribution.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] if the representation is not
    /// phase-type (the modulating chain must be a CTMC).
    pub fn new(model: ClusterModel, inter_arrival: MatrixExp) -> Result<Self> {
        if !inter_arrival.is_phase_type() {
            return Err(CoreError::InvalidParameter {
                message: "inter-arrival distribution must be phase-type".into(),
            });
        }
        Ok(MeArrivalCluster {
            model,
            inter_arrival,
        })
    }

    /// The cluster (service-side) model.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// Effective mean arrival rate `1 / E[inter-arrival]`.
    pub fn arrival_rate(&self) -> f64 {
        1.0 / self.inter_arrival.mean()
    }

    /// Utilization `ρ` under the ME arrival stream.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate() / self.model.capacity()
    }

    /// Assembles the ME/MMPP/1 QBD on the product phase space.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from the layers below.
    pub fn to_qbd(&self) -> Result<Qbd> {
        let service = self.model.service_process()?;
        let ms = service.dim();
        let is = Matrix::identity(ms);

        let b = self.inter_arrival.rate_matrix();
        let ma = b.nrows();
        let ia = Matrix::identity(ma);
        // Arrival MAP: D0 = −B, D1 = (B·ε)·p.
        let d0 = -b;
        let exit = self.inter_arrival.exit_rates();
        let p = self.inter_arrival.entrance();
        let d1 = Matrix::from_fn(ma, ma, |i, j| exit[i] * p[j]);

        let l = Matrix::diag(service.rates().as_slice());
        let q_minus_l = service.generator() - &l;

        let a0 = kron::kron_product(&d1, &is);
        let a1 = kron::kron_product(&d0, &is) + kron::kron_product(&ia, &q_minus_l);
        let a2 = kron::kron_product(&ia, &l);
        let b00 = kron::kron_product(&d0, &is) + kron::kron_product(&ia, service.generator());
        let b01 = a0.clone();
        let b10 = a2.clone();
        Ok(Qbd::new(a0, a1, a2, b00, b01, b10)?)
    }

    /// Solves the ME/MMPP/1 queue.
    ///
    /// # Errors
    ///
    /// [`CoreError::Unstable`] when the arrival rate reaches capacity;
    /// solver errors otherwise.
    pub fn solve(&self) -> Result<MeArrivalSolution> {
        if self.arrival_rate() >= self.model.capacity() {
            return Err(CoreError::Unstable {
                lambda: self.arrival_rate(),
                capacity: self.model.capacity(),
            });
        }
        Ok(MeArrivalSolution {
            utilization: self.utilization(),
            inner: self.to_qbd()?.solve()?,
        })
    }
}

/// Stationary solution of an [`MeArrivalCluster`].
#[derive(Debug, Clone)]
pub struct MeArrivalSolution {
    utilization: f64,
    inner: QbdSolution,
}

impl MeArrivalSolution {
    /// Mean number of tasks in the system.
    pub fn mean_queue_length(&self) -> f64 {
        self.inner.mean_queue_length()
    }

    /// Mean queue length normalized by M/M/1 at the same utilization.
    pub fn normalized_mean_queue_length(&self) -> f64 {
        self.mean_queue_length()
            / mm1::mean_queue_length(self.utilization)
                .expect("solved model is stable, so utilization < 1")
    }

    /// Tail probability `Pr(Q > k)`.
    pub fn tail_probability(&self, k: usize) -> f64 {
        self.inner.tail_probability(k)
    }

    /// Probability of exactly `n` tasks.
    pub fn queue_length_pmf(&self, n: usize) -> f64 {
        self.inner.level_probability(n)
    }

    /// The raw QBD solution (product phase space).
    pub fn qbd(&self) -> &QbdSolution {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Erlang, Exponential, HyperExponential, TruncatedPowerTail};

    fn service_model() -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(3, 1.4, 0.5, 10.0).unwrap())
            .utilization(0.5) // placeholder; ME arrivals decide the load
            .build()
            .unwrap()
    }

    #[test]
    fn exponential_arrivals_reproduce_poisson_model() {
        let m = service_model();
        let lambda = 0.5 * m.capacity();
        let me = Exponential::new(lambda).unwrap().to_matrix_exp();
        let me_sol = MeArrivalCluster::new(m.clone(), me)
            .unwrap()
            .solve()
            .unwrap();
        let poisson_sol = m.with_arrival_rate(lambda).unwrap().solve().unwrap();
        assert!(
            (me_sol.mean_queue_length() - poisson_sol.mean_queue_length()).abs()
                < 1e-8 * poisson_sol.mean_queue_length()
        );
        for k in [0usize, 5, 50] {
            assert!(
                (me_sol.tail_probability(k) - poisson_sol.tail_probability(k)).abs() < 1e-10,
                "k={k}"
            );
        }
    }

    #[test]
    fn smoother_arrivals_shorten_the_queue() {
        let m = service_model();
        let lambda = 0.6 * m.capacity();
        let erlang = Erlang::new(4, 4.0 * lambda).unwrap().to_matrix_exp();
        let poisson = Exponential::new(lambda).unwrap().to_matrix_exp();
        let smooth = MeArrivalCluster::new(m.clone(), erlang)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        let rough = MeArrivalCluster::new(m, poisson)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        assert!(smooth < rough, "Erlang {smooth} vs Poisson {rough}");
    }

    #[test]
    fn burstier_arrivals_lengthen_the_queue() {
        let m = service_model();
        let lambda = 0.6 * m.capacity();
        let bursty = HyperExponential::balanced(1.0 / lambda, 10.0)
            .unwrap()
            .to_matrix_exp();
        let poisson = Exponential::new(lambda).unwrap().to_matrix_exp();
        let heavy = MeArrivalCluster::new(m.clone(), bursty)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        let base = MeArrivalCluster::new(m, poisson)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        assert!(heavy > base, "bursty {heavy} vs Poisson {base}");
    }

    #[test]
    fn utilization_derived_from_interarrival_mean() {
        let m = service_model();
        let me = Erlang::with_mean(2, 1.0).unwrap().to_matrix_exp();
        let c = MeArrivalCluster::new(m, me).unwrap();
        assert!((c.arrival_rate() - 1.0).abs() < 1e-12);
        assert!((c.utilization() - 1.0 / 3.68).abs() < 1e-12);
    }

    #[test]
    fn oversaturation_rejected() {
        let m = service_model();
        let me = Exponential::new(10.0).unwrap().to_matrix_exp();
        assert!(matches!(
            MeArrivalCluster::new(m, me).unwrap().solve(),
            Err(CoreError::Unstable { .. })
        ));
    }

    #[test]
    fn non_phase_type_rejected() {
        use performa_linalg::{Matrix, Vector};
        let bad = MatrixExp::new(Vector::from(vec![1.0]), Matrix::from_rows(&[&[-1.0]])).unwrap();
        assert!(MeArrivalCluster::new(service_model(), bad).is_err());
    }

    #[test]
    fn blowup_survives_nonexponential_arrivals() {
        // The qualitative blow-up story is about the service side; Erlang
        // arrivals do not remove it.
        let m = service_model();
        let deep = MeArrivalCluster::new(
            m.clone(),
            Erlang::with_mean(3, 1.0 / (0.75 * m.capacity())).unwrap().to_matrix_exp(),
        )
        .unwrap()
        .solve()
        .unwrap();
        // Erlang-3 arrivals alone would push the queue *below* M/M/1
        // (scv = 1/3); failures keep it clearly above despite that.
        assert!(
            deep.normalized_mean_queue_length() > 1.2,
            "norm {}",
            deep.normalized_mean_queue_length()
        );
    }
}
