//! Parameter sensitivity of the performability metrics.
//!
//! The paper's central warning is that the metrics react *discontinuously*
//! at blow-up boundaries, so local sensitivities are exactly what a
//! designer needs to know: how much does the mean queue length move per
//! unit of availability, degradation factor, capacity or load — and is
//! the configuration close to a boundary where these derivatives explode?
//!
//! Derivatives are computed by central finite differences on the exact
//! analytic solution (each probe is a full matrix-geometric solve, so the
//! values are exact up to the differencing error).

use crate::blowup;
use crate::model::ClusterModel;
use crate::{CoreError, Result};

/// Relative step used for central differences.
const REL_STEP: f64 = 1e-4;

/// Local sensitivities of the mean queue length at a model's operating
/// point, each expressed as a raw partial derivative.
#[derive(Debug, Clone, PartialEq)]
pub struct Sensitivities {
    /// `∂E[Q]/∂λ` — per unit of arrival rate.
    pub wrt_arrival_rate: f64,
    /// `∂E[Q]/∂A` — per unit of per-node availability, holding the
    /// UP+DOWN cycle length constant (the paper's Fig. 5 sweep direction).
    pub wrt_availability: f64,
    /// `∂E[Q]/∂δ` — per unit of degradation factor.
    pub wrt_degradation: f64,
    /// `∂E[Q]/∂ν_p` — per unit of peak service rate.
    pub wrt_peak_rate: f64,
    /// Distance (in utilization) to the nearest blow-up threshold;
    /// negative when the operating point sits above (deeper than) every
    /// threshold... see [`distance_to_blowup`].
    pub distance_to_threshold: f64,
}

fn mean_ql(model: &ClusterModel) -> Result<f64> {
    Ok(model.solve()?.mean_queue_length())
}

/// Rebuilds the model with availability `a` (cycle length preserved) by
/// rescaling both period means. Requires both periods to stay valid.
fn with_availability(model: &ClusterModel, a: f64) -> Result<ClusterModel> {
    if !(0.0 < a && a < 1.0) {
        return Err(CoreError::InvalidParameter {
            message: format!("availability {a} must lie in (0, 1)"),
        });
    }
    let cycle = model.mttf() + model.mttr();
    let up_scale = a * cycle / model.mttf();
    let down_scale = (1.0 - a) * cycle / model.mttr();
    // Rescale by rebuilding the distributions via their ME representation
    // is non-trivial for arbitrary families; instead exploit that every
    // analytic family here exposes a mean-scaling constructor through
    // `Dist`. We scale exponentially-represented means by rebuilding with
    // scaled matrix-exponential rate matrices.
    let up = scale_dist(model.up(), up_scale)?;
    let down = scale_dist(model.down(), down_scale)?;
    ClusterModel::builder()
        .servers(model.servers())
        .peak_rate(model.peak_rate())
        .degradation(model.degradation())
        .up(up)
        .down(down)
        .arrival_rate(model.arrival_rate())
        .build()
}

/// Scales a phase-type distribution's time axis by `factor` (mean scales
/// by `factor`, shape preserved exactly).
fn scale_dist(d: &performa_dist::Dist, factor: f64) -> Result<performa_dist::Dist> {
    use performa_dist::{Dist, Erlang, Exponential, HyperExponential, Moments};
    let scaled = match d {
        Dist::Exponential(e) => Exponential::new(e.rate() / factor)
            .map(Dist::Exponential)
            .map_err(CoreError::from)?,
        Dist::Erlang(e) => Erlang::new(e.stages(), e.rate() / factor)
            .map(Dist::Erlang)
            .map_err(CoreError::from)?,
        Dist::HyperExponential(h) => {
            let rates: Vec<f64> = h.rates().iter().map(|r| r / factor).collect();
            HyperExponential::new(h.probs(), &rates)
                .map(Dist::HyperExponential)
                .map_err(CoreError::from)?
        }
        Dist::TruncatedPowerTail(t) => performa_dist::TruncatedPowerTail::with_mean(
            t.truncation(),
            t.alpha(),
            t.theta(),
            t.mean() * factor,
        )
        .map(Dist::TruncatedPowerTail)
        .map_err(CoreError::from)?,
        other => {
            return Err(CoreError::InvalidParameter {
                message: format!(
                    "cannot scale non-phase-type family `{}`",
                    other.family()
                ),
            })
        }
    };
    Ok(scaled)
}

/// Signed utilization distance to the nearest blow-up threshold:
/// positive = the operating point is below the nearest threshold (safe
/// side), negative = above it. Magnitudes below ~0.05 deserve attention.
pub fn distance_to_blowup(model: &ClusterModel) -> f64 {
    let rho = model.utilization();
    let thresholds = blowup::utilization_thresholds(model);
    let mut best = f64::INFINITY;
    for &t in &thresholds {
        let d = t - rho;
        if d.abs() < best.abs() {
            best = d;
        }
    }
    best
}

/// Computes all local sensitivities at the model's operating point.
///
/// # Errors
///
/// Propagates solver errors; also fails if a probe point is unstable
/// (operating too close to saturation for the chosen step) or the period
/// distributions cannot be rescaled.
pub fn sensitivities(model: &ClusterModel) -> Result<Sensitivities> {
    // λ
    let l = model.arrival_rate();
    let dl = l * REL_STEP;
    let d_lambda = (mean_ql(&model.with_arrival_rate(l + dl)?)?
        - mean_ql(&model.with_arrival_rate(l - dl)?)?)
        / (2.0 * dl);

    // A (cycle-preserving)
    let a = model.availability();
    let da = (a.min(1.0 - a)) * REL_STEP;
    let d_avail = (mean_ql(&with_availability(model, a + da)?)?
        - mean_ql(&with_availability(model, a - da)?)?)
        / (2.0 * da);

    // δ — at fixed λ (capacity changes with δ).
    let delta = model.degradation();
    let dd = REL_STEP.max(delta * REL_STEP);
    let (lo, hi) = if delta - dd < 0.0 {
        (delta, delta + dd)
    } else if delta + dd > 1.0 {
        (delta - dd, delta)
    } else {
        (delta - dd, delta + dd)
    };
    let rebuild_delta = |d: f64| -> Result<ClusterModel> {
        ClusterModel::builder()
            .servers(model.servers())
            .peak_rate(model.peak_rate())
            .degradation(d)
            .up(model.up().clone())
            .down(model.down().clone())
            .arrival_rate(model.arrival_rate())
            .build()
    };
    let d_delta = (mean_ql(&rebuild_delta(hi)?)? - mean_ql(&rebuild_delta(lo)?)?) / (hi - lo);

    // ν_p — at fixed λ.
    let nu = model.peak_rate();
    let dn = nu * REL_STEP;
    let rebuild_nu = |v: f64| -> Result<ClusterModel> {
        ClusterModel::builder()
            .servers(model.servers())
            .peak_rate(v)
            .degradation(model.degradation())
            .up(model.up().clone())
            .down(model.down().clone())
            .arrival_rate(model.arrival_rate())
            .build()
    };
    let d_nu = (mean_ql(&rebuild_nu(nu + dn)?)? - mean_ql(&rebuild_nu(nu - dn)?)?) / (2.0 * dn);

    Ok(Sensitivities {
        wrt_arrival_rate: d_lambda,
        wrt_availability: d_avail,
        wrt_degradation: d_delta,
        wrt_peak_rate: d_nu,
        distance_to_threshold: distance_to_blowup(model),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn model(rho: f64) -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(6, 1.4, 0.2, 10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
    }

    #[test]
    fn signs_are_physical() {
        let s = sensitivities(&model(0.5)).unwrap();
        assert!(s.wrt_arrival_rate > 0.0, "more load, more queue");
        assert!(s.wrt_availability < 0.0, "more availability, less queue");
        assert!(s.wrt_degradation < 0.0, "higher delta = faster degraded service");
        assert!(s.wrt_peak_rate < 0.0, "faster servers, less queue");
    }

    #[test]
    fn sensitivities_explode_near_blowup() {
        let calm = sensitivities(&model(0.45)).unwrap();
        let hot = sensitivities(&model(0.605)).unwrap();
        assert!(
            hot.wrt_arrival_rate > 5.0 * calm.wrt_arrival_rate,
            "calm {} vs hot {}",
            calm.wrt_arrival_rate,
            hot.wrt_arrival_rate
        );
        assert!(hot.distance_to_threshold.abs() < 0.01);
    }

    #[test]
    fn distance_to_blowup_signs() {
        // Just below rho_1 = 0.6087: positive small. Just above: negative.
        assert!(distance_to_blowup(&model(0.60)) > 0.0);
        assert!(distance_to_blowup(&model(0.62)) < 0.0);
        // Near rho_2 = 0.2174.
        let d = distance_to_blowup(&model(0.21));
        assert!(d > 0.0 && d < 0.01);
    }

    #[test]
    fn availability_rescale_preserves_cycle_and_shape() {
        let m = model(0.5);
        let m2 = with_availability(&m, 0.8).unwrap();
        assert!((m2.availability() - 0.8).abs() < 1e-9);
        assert!((m2.mttf() + m2.mttr() - 100.0).abs() < 1e-9);
        // Repair stays a TPT with the same truncation and alpha.
        match m2.down() {
            performa_dist::Dist::TruncatedPowerTail(t) => {
                assert_eq!(t.truncation(), 6);
                assert!((t.alpha() - 1.4).abs() < 1e-12);
            }
            other => panic!("family changed: {}", other.family()),
        }
    }

    #[test]
    fn rescale_rejects_bad_availability() {
        let m = model(0.5);
        assert!(with_availability(&m, 0.0).is_err());
        assert!(with_availability(&m, 1.0).is_err());
    }
}
