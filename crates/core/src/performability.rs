//! Transient performability metrics of the cluster (Meyer-style reward
//! analysis on the server-state modulator).
//!
//! The stationary queue analysis (the paper's focus) is complemented here
//! by finite-horizon measures that system designers commonly ask for:
//!
//! * probability that at least `k` of the `N` servers are DOWN at time
//!   `t`,
//! * expected instantaneous service capacity at time `t`,
//! * interval availability / expected average capacity over `[0, t]`,
//! * expected time until the cluster first enters a blow-up-critical
//!   configuration (all computed on the lumped occupancy modulator by
//!   uniformization).

use performa_linalg::Vector;
use performa_markov::aggregate::occupancy_states;
use performa_markov::transient::Uniformized;
use performa_markov::Mmpp;

use crate::model::ClusterModel;
use crate::Result;

/// Transient analyzer over a cluster's server-state modulator.
#[derive(Debug, Clone)]
pub struct TransientAnalysis {
    /// Lumped modulator (queue-independent server states).
    mmpp: Mmpp,
    uni: Uniformized,
    /// Number of UP servers per modulator state.
    up_counts: Vec<u32>,
    /// All-servers-up initial distribution.
    all_up: Vector,
    servers: usize,
}

impl TransientAnalysis {
    /// Builds the analyzer for a cluster model.
    ///
    /// # Errors
    ///
    /// Propagates modulator-construction errors.
    pub fn new(model: &ClusterModel) -> Result<Self> {
        let server = model.server_model()?;
        let single = server.modulator();
        let nu = server.up().dim();
        let mmpp = model.service_process()?;
        let uni = Uniformized::new(mmpp.generator())?;

        let states = occupancy_states(single.dim(), model.servers());
        let up_counts: Vec<u32> = states
            .iter()
            .map(|v| v[..nu].iter().sum::<u32>())
            .collect();
        // The state with every server in the first UP phase is index 0
        // (reverse-lexicographic enumeration); build it explicitly anyway.
        let mut all_up = Vector::zeros(states.len());
        let idx = states
            .iter()
            .position(|v| v[0] == model.servers() as u32)
            .expect("the all-up occupancy exists");
        all_up[idx] = 1.0;

        Ok(TransientAnalysis {
            mmpp,
            uni,
            up_counts,
            all_up,
            servers: model.servers(),
        })
    }

    /// Modulator state distribution at time `t`, starting from all
    /// servers UP (fresh cluster).
    pub fn state_distribution(&self, t: f64) -> Vector {
        self.uni.distribution(&self.all_up, t)
    }

    /// Probability that at least `k` servers are DOWN at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `k > N`.
    pub fn prob_at_least_down(&self, k: usize, t: f64) -> f64 {
        assert!(k <= self.servers, "cannot have {k} of {} down", self.servers);
        let dist = self.state_distribution(t);
        (0..dist.len())
            .filter(|&i| (self.servers as u32 - self.up_counts[i]) as usize >= k)
            .map(|i| dist[i])
            .sum()
    }

    /// Expected instantaneous service capacity at time `t` (tasks/time).
    pub fn expected_capacity(&self, t: f64) -> f64 {
        self.state_distribution(t).dot(self.mmpp.rates())
    }

    /// Expected *average* capacity over `[0, t]` — the reward-rate analog
    /// of interval availability.
    pub fn interval_capacity(&self, t: f64) -> f64 {
        self.uni.interval_reward(&self.all_up, self.mmpp.rates(), t)
    }

    /// Interval availability over `[0, t]`: expected fraction of
    /// server-time spent UP, starting from a fresh cluster.
    pub fn interval_availability(&self, t: f64) -> f64 {
        let per_state: Vector = self
            .up_counts
            .iter()
            .map(|&u| u as f64 / self.servers as f64)
            .collect();
        self.uni.interval_reward(&self.all_up, &per_state, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClusterModel;
    use performa_dist::{Exponential, Moments, TruncatedPowerTail};

    fn model() -> ClusterModel {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(Exponential::with_mean(10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap()
    }

    #[test]
    fn fresh_cluster_starts_fully_up() {
        let a = TransientAnalysis::new(&model()).unwrap();
        assert_eq!(a.prob_at_least_down(1, 0.0), 0.0);
        assert!((a.expected_capacity(0.0) - 4.0).abs() < 1e-12);
        assert!((a.interval_availability(1e-6) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn long_run_matches_stationary_values() {
        let m = model();
        let a = TransientAnalysis::new(&m).unwrap();
        let t = 10_000.0;
        // Expected capacity → ν̄ = 3.68.
        assert!((a.expected_capacity(t) - m.capacity()).abs() < 1e-6);
        // P(at least 1 down) → 1 − A² = 0.19.
        assert!((a.prob_at_least_down(1, t) - 0.19).abs() < 1e-6);
        // P(both down) → (1 − A)² = 0.01.
        assert!((a.prob_at_least_down(2, t) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn interval_availability_decreases_from_one_to_steady_state() {
        let a = TransientAnalysis::new(&model()).unwrap();
        let short = a.interval_availability(1.0);
        let medium = a.interval_availability(50.0);
        let long = a.interval_availability(5_000.0);
        assert!(short > medium && medium > long);
        assert!((long - 0.9).abs() < 0.005);
    }

    #[test]
    fn capacity_monotone_decay_from_fresh_start() {
        let a = TransientAnalysis::new(&model()).unwrap();
        let mut prev = f64::INFINITY;
        for &t in &[0.0, 5.0, 20.0, 100.0, 1000.0] {
            let c = a.expected_capacity(t);
            assert!(c <= prev + 1e-12, "t={t}");
            prev = c;
        }
    }

    #[test]
    fn heavy_tailed_repairs_slow_the_transient() {
        // With TPT repairs, the DOWN probability approaches its stationary
        // value more slowly (long repairs hold the state down).
        let heavy = ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(8, 1.4, 0.2, 10.0).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        assert!((heavy.down().mean() - 10.0).abs() < 1e-9);
        let ta_h = TransientAnalysis::new(&heavy).unwrap();
        let ta_e = TransientAnalysis::new(&model()).unwrap();
        // Same stationary point...
        assert!(
            (ta_h.prob_at_least_down(1, 50_000.0) - ta_e.prob_at_least_down(1, 50_000.0)).abs()
                < 1e-4
        );
        // ...but different transient shape (they genuinely differ at
        // moderate horizons).
        let h_mid = ta_h.prob_at_least_down(1, 30.0);
        let e_mid = ta_e.prob_at_least_down(1, 30.0);
        assert!((h_mid - e_mid).abs() > 1e-3, "{h_mid} vs {e_mid}");
    }

    #[test]
    #[should_panic(expected = "cannot have")]
    fn too_many_down_panics() {
        let a = TransientAnalysis::new(&model()).unwrap();
        let _ = a.prob_at_least_down(3, 1.0);
    }
}
