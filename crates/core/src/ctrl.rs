//! Run-level control: cooperative cancellation and budget splitting.
//!
//! [`CancelToken`] (re-exported from `performa-ctrl`) is the shared
//! stop signal, checked at the sweep's work-pull, inside the solver
//! supervisor between stages, and at the counted iteration loops'
//! amortized check stride. [`RunBudget`] turns one whole-run wall-clock
//! budget (the CLI's `--deadline` on sweep verbs) into per-point
//! deadlines.
//!
//! # Budget split policy
//!
//! The grid's solve cost is wildly non-uniform: near the blow-up loads
//! ρ_i a single point can cost orders of magnitude more iterations than
//! the rest of the grid (the paper's Eq. 3 territory, and exactly what
//! the sweep's `PointCost` records show). A naive `remaining / points`
//! split would starve those points. Instead each allotment is
//!
//! * **fair share** — `remaining / points_left`, the baseline;
//! * **cost-informed** — if the recent points' exponentially weighted
//!   mean solve time exceeds the fair share, the allotment is raised to
//!   `2 × ewma` (expensive-looking points get more), capped by the
//!   remaining budget — over-spending points steal from the tail of the
//!   grid rather than failing spuriously;
//! * **floored** — never below the configured floor, so late points are
//!   not handed degenerate microsecond deadlines.
//!
//! When the budget is exhausted [`RunBudget::allot`] returns `None` and
//! the pool stops issuing points; completed points are untouched, so
//! the run exits with accurate partial stats and a resumable store.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use performa_ctrl::{install_sigint, CancelToken, EXIT_PARTIAL};

/// Default per-point deadline floor: enough for any healthy point on
/// paper-scale models, small enough that a stalled point cannot eat a
/// meaningful slice of an interactive budget.
pub const DEFAULT_POINT_FLOOR: Duration = Duration::from_millis(250);

/// Smoothing of the per-point cost EWMA: `ewma ← (3·ewma + cost) / 4`.
const EWMA_WEIGHT: u64 = 3;

/// Splits one whole-run wall-clock budget into per-point deadlines (see
/// the [module docs](self) for the policy). Thread-safe: workers call
/// [`allot`](RunBudget::allot) / [`record`](RunBudget::record)
/// concurrently without locks.
#[derive(Debug)]
pub struct RunBudget {
    start: Instant,
    total: Duration,
    floor: Duration,
    /// EWMA of observed per-point solve durations, in nanoseconds
    /// (0 = no observation yet).
    ewma_nanos: AtomicU64,
}

impl RunBudget {
    /// A budget of `total` starting now, with the default floor.
    #[must_use]
    pub fn new(total: Duration) -> Self {
        RunBudget::with_floor(total, DEFAULT_POINT_FLOOR)
    }

    /// A budget of `total` starting now with an explicit per-point
    /// deadline floor.
    #[must_use]
    pub fn with_floor(total: Duration, floor: Duration) -> Self {
        RunBudget {
            start: Instant::now(),
            total,
            floor,
            ewma_nanos: AtomicU64::new(0),
        }
    }

    /// Wall-clock budget remaining (zero once exhausted).
    #[must_use]
    pub fn remaining(&self) -> Duration {
        self.total.saturating_sub(self.start.elapsed())
    }

    /// Whether the whole-run budget has been used up.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.remaining().is_zero()
    }

    /// Feeds one completed point's solve duration into the cost EWMA.
    pub fn record(&self, elapsed: Duration) {
        let cost = elapsed.as_nanos().min(u128::from(u64::MAX)) as u64;
        // Lock-free EWMA: racing updates may each fold their cost into
        // the same prior value; either result is a valid smoothing and
        // the estimate only informs deadline grants.
        let prior = self.ewma_nanos.load(Ordering::Relaxed);
        let next = if prior == 0 {
            cost
        } else {
            (EWMA_WEIGHT * (prior / (EWMA_WEIGHT + 1))).saturating_add(cost / (EWMA_WEIGHT + 1))
        };
        self.ewma_nanos.store(next.max(1), Ordering::Relaxed);
    }

    /// The per-point deadline for the next point, given how many grid
    /// points are still unsolved, or `None` when the budget is
    /// exhausted (the pool must stop issuing points).
    #[must_use]
    pub fn allot(&self, points_left: usize) -> Option<Instant> {
        let remaining = self.remaining();
        if remaining.is_zero() {
            return None;
        }
        let fair = remaining / points_left.max(1) as u32;
        let mut grant = fair.max(self.floor);
        let ewma = Duration::from_nanos(self.ewma_nanos.load(Ordering::Relaxed));
        if !ewma.is_zero() && ewma > grant {
            // Recent points ran hotter than the fair share: grant twice
            // the observed mean (headroom for the variance the paper is
            // about), but never more than everything that is left.
            grant = (ewma * 2).min(remaining).max(self.floor);
        }
        Some(Instant::now() + grant)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_budget_grants_fair_shares() {
        let b = RunBudget::with_floor(Duration::from_secs(100), Duration::from_millis(1));
        let d = b.allot(10).expect("budget not exhausted");
        let grant = d - Instant::now();
        // Fair share is ~10 s; allow slack for test-runner jitter.
        assert!(grant > Duration::from_secs(8), "grant {grant:?}");
        assert!(grant < Duration::from_secs(12), "grant {grant:?}");
    }

    #[test]
    fn zero_budget_is_exhausted_immediately() {
        let b = RunBudget::new(Duration::ZERO);
        assert!(b.exhausted());
        assert!(b.allot(5).is_none());
    }

    #[test]
    fn floor_bounds_small_fair_shares() {
        let b = RunBudget::with_floor(Duration::from_secs(1), Duration::from_millis(400));
        // Fair share 1s/1000 = 1ms, far below the floor.
        let d = b.allot(1000).expect("budget not exhausted");
        let grant = d - Instant::now();
        assert!(grant >= Duration::from_millis(300), "grant {grant:?}");
    }

    #[test]
    fn expensive_history_raises_the_grant() {
        let b = RunBudget::with_floor(Duration::from_secs(100), Duration::from_millis(1));
        // Points have been costing ~20 s; fair share for 100 left is 1 s.
        for _ in 0..8 {
            b.record(Duration::from_secs(20));
        }
        let d = b.allot(100).expect("budget not exhausted");
        let grant = d - Instant::now();
        assert!(grant > Duration::from_secs(10), "grant {grant:?}");
        // And the grant never exceeds what is left.
        assert!(grant <= Duration::from_secs(100), "grant {grant:?}");
    }

    #[test]
    fn record_is_monotone_smoothing_not_last_write() {
        let b = RunBudget::new(Duration::from_secs(10));
        b.record(Duration::from_secs(4));
        b.record(Duration::from_millis(1));
        let ewma = Duration::from_nanos(b.ewma_nanos.load(Ordering::Relaxed));
        // One cheap point must not erase the expensive history.
        assert!(ewma > Duration::from_secs(2), "ewma {ewma:?}");
    }
}
