use performa_qbd::{mm1, QbdSolution};

use crate::model::ClusterModel;
use crate::Result;

/// The exact stationary solution of a [`ClusterModel`], with the paper's
/// performability metrics layered on top of the raw QBD law.
#[derive(Debug, Clone)]
pub struct ClusterSolution {
    model: ClusterModel,
    qbd: QbdSolution,
}

impl ClusterSolution {
    pub(crate) fn new(model: ClusterModel, qbd: QbdSolution) -> Self {
        ClusterSolution { model, qbd }
    }

    /// The model this solution belongs to.
    pub fn model(&self) -> &ClusterModel {
        &self.model
    }

    /// The underlying QBD solution (phase-level detail).
    pub fn qbd(&self) -> &QbdSolution {
        &self.qbd
    }

    /// Mean number of tasks in the system (queued + in service).
    pub fn mean_queue_length(&self) -> f64 {
        self.qbd.mean_queue_length()
    }

    /// Mean queue length normalized by the M/M/1 value `ρ/(1−ρ)` at the
    /// same utilization — the y-axis of the paper's Figures 1, 4 and 5.
    pub fn normalized_mean_queue_length(&self) -> f64 {
        self.mean_queue_length()
            / mm1::mean_queue_length(self.model.utilization())
                .expect("solved model is stable, so utilization < 1")
    }

    /// Variance of the number of tasks in the system.
    pub fn queue_length_variance(&self) -> f64 {
        self.qbd.variance_queue_length()
    }

    /// Probability of exactly `n` tasks in the system.
    pub fn queue_length_pmf(&self, n: usize) -> f64 {
        self.qbd.level_probability(n)
    }

    /// Queue-length pmf for `0..len` (the paper's Figure 2 series).
    pub fn queue_length_pmf_range(&self, len: usize) -> Vec<f64> {
        self.qbd.pmf(len)
    }

    /// Tail probability `Pr(Q > k)`; by PASTA, the probability an arriving
    /// task finds more than `k` tasks present.
    pub fn tail_probability(&self, k: usize) -> f64 {
        self.qbd.tail_probability(k)
    }

    /// `Pr(Q ≥ k)` — the paper's Figures 3 and 6 plot `Pr(Q ≥ 500)`.
    pub fn at_least_probability(&self, k: usize) -> f64 {
        self.qbd.at_least_probability(k)
    }

    /// Approximate probability that a task's system time exceeds `d`,
    /// using the paper's mapping `Pr(S > d) ≈ Pr(Q > d·ν̄)`.
    pub fn delay_violation_probability(&self, d: f64) -> f64 {
        if d <= 0.0 {
            return 1.0;
        }
        let k = (d * self.model.capacity()).floor() as usize;
        self.qbd.tail_probability(k)
    }

    /// Approximate probability that a task meets the delay bound `d`
    /// (success probability of a task with a QoS deadline).
    pub fn delay_success_probability(&self, d: f64) -> f64 {
        1.0 - self.delay_violation_probability(d)
    }

    /// Asymptotic geometric decay rate of the queue-length distribution
    /// (spectral radius of `R`).
    ///
    /// # Errors
    ///
    /// Propagates the rare power-iteration failure.
    pub fn decay_rate(&self) -> Result<f64> {
        Ok(self.qbd.decay_rate()?)
    }

    /// Probability that the system is empty.
    pub fn empty_probability(&self) -> f64 {
        self.qbd.level_probability(0)
    }

    /// The `p`-quantile of the queue length (smallest `k` with
    /// `Pr(Q ≤ k) ≥ p`), searched up to `max_k`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p < 1`.
    pub fn queue_length_quantile(&self, p: f64, max_k: usize) -> Option<usize> {
        self.qbd.queue_length_quantile(p, max_k)
    }
}

#[cfg(test)]
mod tests {
    use crate::ClusterModel;
    use performa_dist::{Exponential, TruncatedPowerTail};

    fn tpt_model(t: u32, rho: f64) -> crate::ClusterSolution {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(TruncatedPowerTail::with_mean(t, 1.4, 0.2, 10.0).unwrap())
            .utilization(rho)
            .build()
            .unwrap()
            .solve()
            .unwrap()
    }

    #[test]
    fn pmf_and_tail_consistency() {
        let sol = tpt_model(5, 0.4);
        let pmf = sol.queue_length_pmf_range(50);
        let prefix: f64 = pmf.iter().sum();
        assert!((sol.tail_probability(49) - (1.0 - prefix)).abs() < 1e-10);
        assert!((sol.at_least_probability(50) - sol.tail_probability(49)).abs() < 1e-15);
        assert!((sol.empty_probability() - pmf[0]).abs() < 1e-15);
    }

    #[test]
    fn delay_metrics() {
        let sol = tpt_model(5, 0.4);
        assert_eq!(sol.delay_violation_probability(0.0), 1.0);
        let d = 2.0;
        let p = sol.delay_violation_probability(d);
        assert!(p > 0.0 && p < 1.0);
        assert!((sol.delay_success_probability(d) + p - 1.0).abs() < 1e-15);
        // Longer deadlines are easier to meet.
        assert!(sol.delay_violation_probability(4.0) < p);
    }

    #[test]
    fn high_variance_repair_dominates_exponential() {
        // At the same utilization inside the blow-up region, TPT T = 9
        // must beat exponential repair by a wide margin.
        let heavy = tpt_model(9, 0.7);
        let light = tpt_model(1, 0.7);
        assert!(
            heavy.mean_queue_length() > 20.0 * light.mean_queue_length(),
            "heavy {} vs light {}",
            heavy.mean_queue_length(),
            light.mean_queue_length()
        );
    }

    #[test]
    fn variance_explodes_in_blowup_region() {
        // The queue-length variance reacts even more violently than the
        // mean across the blow-up boundary.
        let calm = tpt_model(9, 0.15);
        let wild = tpt_model(9, 0.7);
        assert!(wild.queue_length_variance() > 1e4 * calm.queue_length_variance());
        // Consistency: Var >= 0 and std dev comparable to the huge mean.
        assert!(calm.queue_length_variance() >= 0.0);
    }

    #[test]
    fn quantiles_blow_up_across_the_boundary() {
        // p99 queue length explodes crossing rho_1 while the median barely
        // moves — the tail, not the bulk, carries the damage.
        let calm = tpt_model(9, 0.55);
        let hot = tpt_model(9, 0.65);
        let calm_p50 = calm.queue_length_quantile(0.5, 100_000).unwrap();
        let hot_p50 = hot.queue_length_quantile(0.5, 100_000).unwrap();
        let calm_p99 = calm.queue_length_quantile(0.99, 1_000_000).unwrap();
        let hot_p99 = hot.queue_length_quantile(0.99, 1_000_000).unwrap();
        assert!(hot_p50 <= calm_p50 + 5, "medians: {calm_p50} -> {hot_p50}");
        assert!(
            hot_p99 > 10 * calm_p99.max(1),
            "p99: {calm_p99} -> {hot_p99}"
        );
    }

    #[test]
    fn decay_rate_reflects_congestion() {
        let low = tpt_model(5, 0.2).decay_rate().unwrap();
        let high = tpt_model(5, 0.8).decay_rate().unwrap();
        assert!(low < high);
        assert!(high < 1.0);
    }

    #[test]
    fn normalized_mean_exceeds_one_under_failures() {
        // Failures always hurt relative to M/M/1 at equal utilization.
        for rho in [0.3, 0.5, 0.7] {
            let sol = tpt_model(5, rho);
            assert!(sol.normalized_mean_queue_length() > 1.0, "rho={rho}");
        }
    }
}
