//! Chaos suite for the control fabric: cooperative cancellation, run
//! budgets, hung-point quarantine, and their composition with injected
//! store/solver faults.
//!
//! Every test takes `performa_obs::test_lock()` for its whole body:
//! the obs recorder is process-global, and the fault-armed tests
//! (compiled under `fault-injection`) use the solver's *global* fault
//! plan, which must never overlap another test's solve.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use performa_core::{
    Axis, CancelToken, ClusterModel, CoreError, Scenario, StoreHandle, SweepOptions, SweepPlan,
};
use performa_dist::Exponential;
use performa_obs as obs;

static NEXT: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "performa_core_chaos_{tag}_{}_{}.log",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Small, fast paper-style cluster (exponential repairs keep the phase
/// dimension tiny, so debug-mode solves stay cheap).
fn template() -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(Exponential::with_mean(10.0).unwrap())
        .utilization(0.5)
        .build()
        .unwrap()
}

fn rho_plan(rhos: Vec<f64>) -> SweepPlan {
    Scenario::new(template(), Axis::Rho(rhos)).compile()
}

fn opts_with_store(path: &Path) -> (SweepOptions, StoreHandle) {
    let (handle, _) = StoreHandle::open(path).unwrap();
    (
        // One worker issues points in index order, which makes the
        // "cancel after the k-th solve" scripts deterministic.
        SweepOptions::default().with_store(handle.clone()).with_threads(1),
        handle,
    )
}

/// An NDJSON sink attached for the duration of one chaos run; metrics
/// only reach sinks at `Debug` verbosity.
struct Trace {
    path: PathBuf,
    id: obs::SinkId,
}

impl Trace {
    fn attach(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "performa_core_chaos_trace_{tag}_{}_{}.ndjson",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let sink = Arc::new(obs::NdjsonSink::create(&path).unwrap());
        let id = obs::add_sink(sink);
        obs::set_level(obs::TraceLevel::Debug);
        Trace { path, id }
    }

    /// Detaches the sink and returns the counter lines with `name`.
    fn counter_lines(self, name: &str) -> Vec<String> {
        obs::set_level(obs::TraceLevel::Off);
        obs::flush_sinks();
        obs::remove_sink(self.id);
        let text = std::fs::read_to_string(&self.path).unwrap();
        obs::ndjson::validate_file(&self.path)
            .unwrap_or_else(|(line, msg)| panic!("trace line {line}: {msg}"));
        let _ = std::fs::remove_file(&self.path);
        text.lines()
            .filter(|l| l.contains(&format!("\"{name}\"")) && l.contains("\"counter\""))
            .map(str::to_string)
            .collect()
    }
}

#[test]
fn mid_run_cancellation_is_partial_flushed_and_resumable_with_zero_resolves() {
    let _guard = obs::test_lock();
    let scratch = Scratch::new("cancel");
    let rhos = vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let n = rhos.len();

    let baseline = rho_plan(rhos.clone())
        .run_map(|sol| sol.normalized_mean_queue_length())
        .expect_values("baseline");

    // Cancel from inside the sweep after the third point solves — the
    // pool must stop issuing points and report the rest as Cancelled.
    let trace = Trace::attach("cancel");
    let token = CancelToken::new();
    let (mut opts, handle) = opts_with_store(&scratch.0);
    opts.cancel = Some(token.clone());
    let solved_so_far = AtomicUsize::new(0);
    let result = rho_plan(rhos.clone()).with_options(opts).run_map(|sol| {
        if solved_so_far.fetch_add(1, Ordering::SeqCst) + 1 == 3 {
            token.cancel();
        }
        sol.normalized_mean_queue_length()
    });
    let cancelled_lines = trace.counter_lines("sweep.cancelled");

    let stats = result.stats();
    assert_eq!(stats.solved, 3, "one worker solves exactly 3 points before the trip");
    assert_eq!(stats.cancelled, n - 3);
    assert_eq!(stats.failed, n - 3);
    assert_eq!(stats.quarantined, 0);
    assert!(stats.interrupted());
    for (i, p) in result.points().iter().enumerate() {
        if i < 3 {
            assert!(p.outcome.is_ok(), "point {i} should have solved");
        } else {
            assert!(
                matches!(p.outcome, Err(CoreError::Cancelled)),
                "point {i}: expected Cancelled, got {:?}",
                p.outcome
            );
        }
    }
    // The `sweep.cancelled` counter reached the NDJSON trace.
    assert!(
        !cancelled_lines.is_empty(),
        "no sweep.cancelled counter in the NDJSON trace"
    );

    // The store was flushed on exit and holds exactly the solved
    // prefix: cancelled points are never persisted.
    assert_eq!(stats.store_appends, 3);
    assert_eq!(handle.len(), 3);
    drop(handle);

    // Resume with the same store: the solved prefix replays (zero
    // re-solves), only the cancelled gap hits the solver, and the
    // combined run is bit-identical to the uninterrupted baseline.
    let (opts, _handle) = opts_with_store(&scratch.0);
    let resumed = rho_plan(rhos)
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    assert_eq!(resumed.stats().store_hits, 3);
    assert_eq!(resumed.stats().store_appends, (n - 3) as u64);
    assert_eq!(resumed.stats().cancelled, 0);
    let vals = resumed.expect_values("resumed run");
    for (a, b) in baseline.iter().zip(&vals) {
        assert_eq!(a.to_bits(), b.to_bits(), "resume is not bit-identical");
    }
}

#[test]
fn zero_run_budget_cancels_everything_before_issuing_points() {
    let _guard = obs::test_lock();
    let rhos = vec![0.2, 0.4, 0.6];
    let n = rhos.len();
    let mut opts = SweepOptions::default().with_threads(1);
    opts.run_budget = Some(Duration::ZERO);
    let result = rho_plan(rhos)
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    let stats = result.stats();
    assert_eq!(stats.solved, 0);
    assert_eq!(stats.cancelled, n);
    assert!(stats.interrupted());
    assert!(result
        .points()
        .iter()
        .all(|p| matches!(p.outcome, Err(CoreError::Cancelled))));
}

#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use performa_qbd::fault as qbd_fault;
    use performa_store::fault as store_fault;
    use performa_store::Store;

    /// Satellite: a persistently stalled point under a per-point
    /// deadline is quarantined — persisted as a typed failure — while
    /// the rest of the grid completes, and a resumed run replays the
    /// quarantined failure instead of re-blocking a worker on it.
    #[test]
    fn stalled_point_is_quarantined_and_the_grid_completes() {
        let _guard = obs::test_lock();
        let scratch = Scratch::new("quarantine");
        let all = vec![0.2, 0.3, 0.4, 0.5, 0.6];

        // Pre-populate the store with every point except the last, so
        // the chaos run solves exactly one fresh point.
        let (opts, _h) = opts_with_store(&scratch.0);
        rho_plan(all[..4].to_vec())
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length())
            .expect_values("pre-population");

        // The fresh point's solver stalls forever (global plan: the
        // sweep pool's workers are fresh threads) and its per-point
        // deadline is already expired — both the first attempt and the
        // hardened retry must trip, quarantining the point.
        let trace = Trace::attach("quarantine");
        let stall = qbd_fault::arm_global(qbd_fault::FaultPlan {
            stall: Some("logred"),
            ..qbd_fault::FaultPlan::default()
        });
        let (mut opts, handle) = opts_with_store(&scratch.0);
        opts.point_deadline = Some(Duration::ZERO);
        let result = rho_plan(all.clone())
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length());
        drop(stall);
        let quarantine_lines = trace.counter_lines("sweep.quarantined");

        let stats = result.stats();
        assert_eq!(stats.solved, 4, "the healthy grid must complete");
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(stats.cancelled, 0, "quarantine is not cancellation");
        assert_eq!(stats.store_hits, 4);
        assert_eq!(stats.store_appends, 1, "the quarantined failure is persisted");
        assert!(
            matches!(result.points()[4].outcome, Err(CoreError::Quarantined { .. })),
            "expected Quarantined, got {:?}",
            result.points()[4].outcome
        );
        assert!(
            !quarantine_lines.is_empty(),
            "no sweep.quarantined counter in the NDJSON trace"
        );
        assert_eq!(handle.len(), 5);
        drop(handle);

        // Resume (fault disarmed): the quarantined failure replays from
        // the store — zero solver invocations, nothing re-blocks.
        let (opts, _h) = opts_with_store(&scratch.0);
        let resumed = rho_plan(all.clone())
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length());
        assert_eq!(resumed.stats().store_hits, 5);
        assert_eq!(resumed.stats().store_appends, 0);
        match &resumed.points()[4].outcome {
            Err(CoreError::ReplayedFailure { kind, .. }) => assert_eq!(kind, "quarantined"),
            other => panic!("expected replayed quarantined failure, got {other:?}"),
        }

        // `retry_failed` re-attempts it; with the stall gone and no
        // deadline the point now solves and shadows the quarantine.
        let (mut opts, _h) = opts_with_store(&scratch.0);
        opts.retry_failed = true;
        let retried = rho_plan(all)
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length());
        assert!(retried.points().iter().all(|p| p.outcome.is_ok()));
        assert_eq!(retried.stats().store_appends, 1);
    }

    /// Mid-run cancellation composed with an injected fsync failure at
    /// the end-of-run flush: the run still completes with typed errors
    /// (no panic, no hang), and because appends are unbuffered the
    /// solved prefix survives a reopen and resumes cleanly.
    #[test]
    fn cancellation_composes_with_a_failing_final_fsync() {
        let _guard = obs::test_lock();
        let scratch = Scratch::new("fsync_cancel");
        let rhos = vec![0.2, 0.3, 0.4, 0.5, 0.6];
        let n = rhos.len();

        let baseline = rho_plan(rhos.clone())
            .run_map(|sol| sol.normalized_mean_queue_length())
            .expect_values("baseline");

        let token = CancelToken::new();
        let (mut opts, handle) = opts_with_store(&scratch.0);
        opts.cancel = Some(token.clone());
        let solved_so_far = AtomicUsize::new(0);
        // The final flush runs on this thread (inside `run_map`), so a
        // thread-local fsync fault reaches exactly that flush.
        let armed = store_fault::arm(store_fault::FaultPlan {
            fail_sync: true,
            ..store_fault::FaultPlan::default()
        });
        let result = rho_plan(rhos.clone()).with_options(opts).run_map(|sol| {
            if solved_so_far.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                token.cancel();
            }
            sol.normalized_mean_queue_length()
        });
        drop(armed);
        drop(handle);

        // The flush failure is surfaced on the first solved slot; the
        // cancelled tail keeps its typed Cancelled outcome.
        let stats = result.stats();
        assert_eq!(stats.cancelled, n - 2);
        assert!(stats.interrupted());
        assert!(result.points().iter().any(|p| matches!(
            &p.outcome,
            Err(CoreError::Store { message }) if message.contains("final flush failed")
        )));
        assert!(result
            .points()
            .iter()
            .skip(2)
            .all(|p| matches!(p.outcome, Err(CoreError::Cancelled))));

        // Appends are unbuffered: the reopen sees the solved prefix
        // intact, and the resume completes bit-identically.
        let (store, open_stats) = Store::open(&scratch.0).unwrap();
        assert!(!open_stats.recovered_truncation);
        assert_eq!(store.len(), 2);
        drop(store);
        let (opts, _h) = opts_with_store(&scratch.0);
        let resumed = rho_plan(rhos)
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length());
        assert_eq!(resumed.stats().store_hits, 2);
        let vals = resumed.expect_values("resumed after fsync fault");
        for (a, b) in baseline.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Torn-write recovery composed with a cancelled resume: a crash
    /// leaves a torn frame at the store tail, the first resume is
    /// SIGINT'd mid-replay, and the second resume still converges to
    /// the byte-identical full result.
    #[test]
    fn torn_tail_then_cancelled_resume_then_clean_resume() {
        let _guard = obs::test_lock();
        let scratch = Scratch::new("torn_cancel");
        let rhos = vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7];
        let n = rhos.len();

        let baseline = rho_plan(rhos.clone())
            .run_map(|sol| sol.normalized_mean_queue_length())
            .expect_values("baseline");

        // "Crashed" first run: the first five points persisted whole,
        // the sixth torn mid-frame by the crash.
        let (opts, handle) = opts_with_store(&scratch.0);
        rho_plan(rhos[..5].to_vec())
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length())
            .expect_values("first run");
        drop(handle);
        {
            let (mut store, _) = Store::open(&scratch.0).unwrap();
            let armed = store_fault::arm(store_fault::FaultPlan {
                short_write: Some((1, 9)),
                ..store_fault::FaultPlan::default()
            });
            let key = performa_core::store_key(
                &template().with_utilization(rhos[5]).unwrap(),
                rhos[5],
            );
            let torn = store.append(
                &key,
                &performa_core::PointRecord::Failed {
                    kind: "numerical_breakdown".to_string(),
                    message: "torn by simulated crash".to_string(),
                },
            );
            assert!(torn.is_err(), "the injected short write must fail the append");
            drop(armed);
        }

        // First resume: truncation recovered on open, then cancelled
        // after two replays — nothing new is persisted.
        let (handle, open_stats) = StoreHandle::open(&scratch.0).unwrap();
        assert!(open_stats.recovered_truncation, "torn tail must be recovered");
        assert_eq!(handle.len(), 5);
        let token = CancelToken::new();
        let opts = SweepOptions::default()
            .with_store(handle.clone())
            .with_threads(1)
            .with_cancel(token.clone());
        let replayed = AtomicUsize::new(0);
        let interrupted = rho_plan(rhos.clone()).with_options(opts).run_map(|sol| {
            if replayed.fetch_add(1, Ordering::SeqCst) + 1 == 2 {
                token.cancel();
            }
            sol.normalized_mean_queue_length()
        });
        assert_eq!(interrupted.stats().cancelled, n - 2);
        assert_eq!(interrupted.stats().store_appends, 0);
        drop(handle);

        // Second resume runs to completion: five replays, one fresh
        // solve for the torn point, byte-identical values.
        let (opts, _h) = opts_with_store(&scratch.0);
        let resumed = rho_plan(rhos)
            .with_options(opts)
            .run_map(|sol| sol.normalized_mean_queue_length());
        assert_eq!(resumed.stats().store_hits, 5);
        assert_eq!(resumed.stats().store_appends, 1);
        let vals = resumed.expect_values("final resume");
        for (a, b) in baseline.iter().zip(&vals) {
            assert_eq!(a.to_bits(), b.to_bits(), "recovery path changed results");
        }
    }
}
