//! Overhead guard for the instrumented solve path.
//!
//! The observability layer promises "pay for what you use": with
//! `TraceLevel::Off` and metrics aggregation disabled, every
//! instrumentation point reduces to a couple of relaxed atomic loads.
//! This test pins that down without being flaky: it compares the
//! *median* solve time with tracing fully off against the median with
//! tracing fully on (Debug level, memory sink, metrics), and asserts
//! the disabled path is not slower than the enabled one beyond a very
//! generous margin.
//!
//! Documented threshold: `median(off) <= 1.5 * median(on) + 10 ms`.
//! The enabled path does strictly more work (clock reads, record
//! allocation, sink dispatch), so the inequality holds with a wide gap
//! on any machine; the 1.5x factor plus the 10 ms absolute slack only
//! absorb scheduler noise on loaded CI runners.

use std::time::{Duration, Instant};

use performa_core::{ClusterModel, SupervisorOptions};
use performa_dist::{Exponential, TruncatedPowerTail};
use performa_obs as obs;

/// The reference N = 4 model: big enough that a solve does real work,
/// small enough that the whole test stays fast.
fn reference_model() -> ClusterModel {
    ClusterModel::builder()
        .servers(4)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(3, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.5)
        .build()
        .unwrap()
}

fn median_solve_time(model: &ClusterModel, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            let (_, report) = model
                .solve_supervised(SupervisorOptions::default())
                .unwrap();
            assert!(!report.degraded);
            t0.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

#[test]
fn disabled_tracing_stays_within_documented_overhead_budget() {
    let _guard = obs::test_lock();
    let model = reference_model();

    // Warm-up so neither measurement pays first-run costs (allocator,
    // caches, lazy statics).
    obs::set_level(obs::TraceLevel::Off);
    obs::set_metrics(false);
    let _ = median_solve_time(&model, 2);

    let off = median_solve_time(&model, 5);

    let sink = std::sync::Arc::new(obs::MemorySink::new());
    let id = obs::add_sink(sink);
    obs::set_level(obs::TraceLevel::Debug);
    obs::set_metrics(true);
    let on = median_solve_time(&model, 5);
    obs::set_level(obs::TraceLevel::Off);
    obs::set_metrics(false);
    obs::remove_sink(id);
    obs::reset_metrics();

    assert!(
        off <= on.mul_f64(1.5) + Duration::from_millis(10),
        "disabled-tracing solve ({off:?}) exceeds budget relative to \
         fully-traced solve ({on:?})"
    );
}

/// The flight recorder rides the same gate: at `TraceLevel::Off` it is
/// never armed, so the supervised solve's per-iteration `note` calls
/// reduce to one relaxed-atomic check and no `qbd.flight` record can
/// reach a sink — even with a sink installed.
#[test]
fn flight_recorder_is_inert_at_level_off() {
    let _guard = obs::test_lock();
    let model = reference_model();

    let sink = std::sync::Arc::new(obs::MemorySink::new());
    let id = obs::add_sink(sink.clone());
    obs::set_level(obs::TraceLevel::Off);
    assert!(
        !obs::flight::armed(),
        "Off level must leave the flight recorder disarmed"
    );

    let (_, report) = model
        .solve_supervised(SupervisorOptions::default())
        .unwrap();
    assert!(!report.degraded);
    assert!(
        sink.is_empty(),
        "Off level must keep every record, flight dumps included, away from sinks"
    );
    obs::remove_sink(id);
}
