//! Kernel-swap regression guard for the fig2 model.
//!
//! The golden values below were captured from the pre-blocked-GEMM
//! solver path (naive triple-loop products, per-iteration allocation)
//! on this exact model: N = 5 servers, truncated-power-tail repair
//! (4 stages, α = 1.4, θ = 0.2, mean 10), exponential up-times of mean
//! 90, degradation 0.2, utilization 0.7 — the configuration behind the
//! paper's Fig. 2 blow-up curves, with a lumped phase dimension of 126.
//!
//! The blocked GEMM, workspace-LU and allocation-free QBD loops must
//! reproduce the queue-length pmf, tail and mean to 1e-9: the kernel
//! rewrite is a performance change, not a numerical one.

// Goldens are full f64 round-trips of the old path's output on purpose.
#![allow(clippy::excessive_precision)]

use performa_core::ClusterModel;
use performa_dist::{Exponential, TruncatedPowerTail};

/// `(q, Pr(Q = q))` pairs captured from the old kernel path.
const GOLDEN_PMF: &[(usize, f64)] = &[
    (0, 2.91018498568488437e-1),
    (1, 1.99359074593058044e-1),
    (2, 1.37888172138806581e-1),
    (5, 4.87220933149824995e-2),
    (10, 1.11065236272417951e-2),
    (50, 8.80395098778824302e-5),
    (100, 9.29456750632746335e-6),
];
const GOLDEN_MEAN: f64 = 3.09850900478806146e0;
const GOLDEN_TAIL_100: f64 = 3.38008871327025770e-4;
const TOL: f64 = 1e-9;

#[test]
fn fig2_model_matches_pre_kernel_swap_goldens() {
    let model = ClusterModel::builder()
        .servers(5)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(4, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.7)
        .build()
        .unwrap();
    let qbd = model.to_qbd().unwrap();
    assert_eq!(qbd.phase_dim(), 126, "lumped fig2 state space changed");

    let sol = model.solve().unwrap();
    let mean = sol.mean_queue_length();
    assert!(
        (mean - GOLDEN_MEAN).abs() < TOL,
        "mean queue length drifted: {mean:.17e} vs golden {GOLDEN_MEAN:.17e}"
    );

    let pmf = sol.queue_length_pmf_range(101);
    for &(q, golden) in GOLDEN_PMF {
        let got = pmf[q];
        assert!(
            (got - golden).abs() < TOL,
            "pmf[{q}] drifted: {got:.17e} vs golden {golden:.17e}"
        );
    }

    let tail = sol.tail_probability(100);
    assert!(
        (tail - GOLDEN_TAIL_100).abs() < TOL,
        "tail[100] drifted: {tail:.17e} vs golden {GOLDEN_TAIL_100:.17e}"
    );
}
