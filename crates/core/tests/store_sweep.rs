//! Sweep ↔ durable-store integration: resume replays cached points
//! bit-identically, stale failures follow the documented semantics,
//! and sharded runs merge back to the unsharded result.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use performa_core::{
    store_key, Axis, ClusterModel, CoreError, PointKey, PointRecord, Scenario, StoreHandle,
    SweepOptions, SweepPlan,
};
use performa_dist::Exponential;
use performa_store::{merge, Store};

static NEXT: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "performa_core_store_{tag}_{}_{}.log",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// Small, fast paper-style cluster (exponential repairs keep the phase
/// dimension tiny, so debug-mode solves stay cheap).
fn template() -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(Exponential::with_mean(10.0).unwrap())
        .utilization(0.5)
        .build()
        .unwrap()
}

fn rho_plan(rhos: Vec<f64>) -> SweepPlan {
    Scenario::new(template(), Axis::Rho(rhos)).compile()
}

fn opts_with_store(path: &Path) -> (SweepOptions, StoreHandle) {
    let (handle, _) = StoreHandle::open(path).unwrap();
    (
        SweepOptions::default().with_store(handle.clone()),
        handle,
    )
}

#[test]
fn resume_replays_cached_points_bit_identically() {
    let scratch = Scratch::new("resume");
    let rhos = vec![0.2, 0.35, 0.5, 0.65, 0.8];
    let n = rhos.len();

    // Ground truth: the same plan without any store.
    let baseline = rho_plan(rhos.clone())
        .run_map(|sol| sol.normalized_mean_queue_length())
        .expect_values("baseline");

    // First run populates the store.
    let (opts, _handle) = opts_with_store(&scratch.0);
    let first = rho_plan(rhos.clone())
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    assert_eq!(first.stats().store_hits, 0);
    assert_eq!(first.stats().store_appends, n as u64);
    let first_vals = first.expect_values("first run");
    for (a, b) in baseline.iter().zip(&first_vals) {
        assert_eq!(a.to_bits(), b.to_bits(), "store write path changed results");
    }

    // Second run against a freshly opened handle (proves durability):
    // every point replays, the solver never runs.
    let (opts, _handle) = opts_with_store(&scratch.0);
    let second = rho_plan(rhos)
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    assert_eq!(second.stats().store_hits, n as u64);
    assert_eq!(second.stats().store_appends, 0);
    let second_vals = second.expect_values("resumed run");
    for (a, b) in baseline.iter().zip(&second_vals) {
        assert_eq!(a.to_bits(), b.to_bits(), "replay is not bit-identical");
    }
}

#[test]
fn deterministic_model_errors_never_enter_the_store() {
    let scratch = Scratch::new("unstable");
    // ρ = 1.2 is unstable: a typed model-level error, not a solver
    // failure — it must not be persisted.
    let rhos = vec![0.3, 1.2, 0.6];
    let (opts, handle) = opts_with_store(&scratch.0);
    let result = rho_plan(rhos.clone())
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    assert_eq!(result.stats().solved, 2);
    assert_eq!(result.stats().failed, 1);
    assert_eq!(result.stats().store_appends, 2);
    assert_eq!(handle.len(), 2);
    assert!(matches!(
        result.points()[1].outcome,
        Err(CoreError::Unstable { .. })
    ));

    // On resume the two solved points replay and the unstable point
    // fails by the same gate again — still nothing new in the log.
    let (opts, _handle) = opts_with_store(&scratch.0);
    let resumed = rho_plan(rhos).with_options(opts).run_map(|sol| sol.mean_queue_length());
    assert_eq!(resumed.stats().store_hits, 2);
    assert_eq!(resumed.stats().store_appends, 0);
    assert!(matches!(
        resumed.points()[1].outcome,
        Err(CoreError::Unstable { .. })
    ));
}

#[test]
fn stale_failure_semantics_version_bump_and_retry_failed() {
    let scratch = Scratch::new("stale");
    let rhos = vec![0.3, 0.6];
    // Hand-plant failure records: for ρ = 0.3 under the *current*
    // solver version, and for ρ = 0.6 under an obsolete version.
    let current = store_key(&template().with_utilization(0.3).unwrap(), 0.3);
    let stale = PointKey {
        solver_version: current.solver_version.wrapping_sub(1),
        ..store_key(&template().with_utilization(0.6).unwrap(), 0.6)
    };
    let failure = PointRecord::Failed {
        kind: "numerical_breakdown".to_string(),
        message: "planted by test".to_string(),
    };
    {
        let (mut store, _) = Store::open(&scratch.0).unwrap();
        store.append(&current, &failure).unwrap();
        store.append(&stale, &failure).unwrap();
        store.flush().unwrap();
    }

    // Default semantics: the current-version failure replays as a
    // typed error; the stale-version record misses and re-solves.
    let (opts, handle) = opts_with_store(&scratch.0);
    let result = rho_plan(rhos.clone())
        .with_options(opts)
        .run_map(|sol| sol.mean_queue_length());
    match &result.points()[0].outcome {
        Err(CoreError::ReplayedFailure { kind, message }) => {
            assert_eq!(kind, "numerical_breakdown");
            assert!(message.contains("planted by test"));
        }
        other => panic!("expected ReplayedFailure, got {other:?}"),
    }
    assert!(result.points()[1].outcome.is_ok());
    assert_eq!(result.stats().store_hits, 1, "stale record must not hit");
    assert_eq!(result.stats().store_appends, 1, "re-solved point is persisted");
    drop(handle);

    // `retry_failed` re-attempts the persisted failure; the fresh
    // success then shadows it for all later runs.
    let (mut opts, _handle) = opts_with_store(&scratch.0);
    opts.retry_failed = true;
    let retried = rho_plan(rhos.clone())
        .with_options(opts)
        .run_map(|sol| sol.mean_queue_length());
    assert!(retried.points().iter().all(|p| p.outcome.is_ok()));
    assert_eq!(retried.stats().store_appends, 1);

    let (opts, _handle) = opts_with_store(&scratch.0);
    let replayed = rho_plan(rhos).with_options(opts).run_map(|sol| sol.mean_queue_length());
    assert!(replayed.points().iter().all(|p| p.outcome.is_ok()));
    assert_eq!(replayed.stats().store_hits, 2);
    assert_eq!(replayed.stats().store_appends, 0);
}

#[test]
fn sharded_runs_merge_back_to_the_unsharded_result() {
    let shard_a = Scratch::new("shard_a");
    let shard_b = Scratch::new("shard_b");
    let merged = Scratch::new("shard_merged");
    let rhos = vec![0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
    let n = rhos.len();

    let baseline = rho_plan(rhos.clone())
        .run_map(|sol| sol.normalized_mean_queue_length())
        .expect_values("unsharded");

    // Shards partition the plan round-robin.
    let plan_a = rho_plan(rhos.clone()).shard(0, 2);
    let plan_b = rho_plan(rhos.clone()).shard(1, 2);
    assert_eq!(plan_a.len() + plan_b.len(), n);
    assert_eq!(plan_a.coordinates(), vec![0.2, 0.4, 0.6, 0.8]);
    assert_eq!(plan_b.coordinates(), vec![0.3, 0.5, 0.7]);

    let (opts_a, _a) = opts_with_store(&shard_a.0);
    let ra = plan_a.with_options(opts_a).run_map(|s| s.normalized_mean_queue_length());
    assert_eq!(ra.stats().store_appends, 4);
    let (opts_b, _b) = opts_with_store(&shard_b.0);
    let rb = plan_b.with_options(opts_b).run_map(|s| s.normalized_mean_queue_length());
    assert_eq!(rb.stats().store_appends, 3);

    let stats = merge(&[shard_a.0.clone(), shard_b.0.clone()], &merged.0).unwrap();
    assert_eq!(stats.added, n);
    assert_eq!(stats.skipped, 0);

    // The full plan over the merged store replays every point.
    let (opts, _m) = opts_with_store(&merged.0);
    let full = rho_plan(rhos)
        .with_options(opts)
        .run_map(|sol| sol.normalized_mean_queue_length());
    assert_eq!(full.stats().store_hits, n as u64);
    assert_eq!(full.stats().store_appends, 0);
    let vals = full.expect_values("merged run");
    for (a, b) in baseline.iter().zip(&vals) {
        assert_eq!(a.to_bits(), b.to_bits(), "sharded+merged differs from unsharded");
    }
}

#[test]
fn shard_bounds_are_enforced() {
    let plan = rho_plan(vec![0.2, 0.4]);
    let caught = std::panic::catch_unwind(move || plan.shard(2, 2));
    assert!(caught.is_err());
}
