//! Retry-ladder coverage via fault injection: a poisoned cold solve
//! recovers through the one hardened retry, a stalled solver exhausts
//! the ladder and persists a typed failure record.
//!
//! The injected plans are process-wide (`arm_global`) because sweep
//! pool workers are fresh threads; the tests serialize on a local lock
//! so the plans never overlap.
#![cfg(feature = "fault-injection")]

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use performa_core::{
    Axis, ClusterModel, CoreError, Scenario, StoreHandle, SweepOptions, SweepPlan,
};
use performa_dist::Exponential;
use performa_qbd::fault::{arm_global, FaultPlan};

static SERIAL: Mutex<()> = Mutex::new(());
static NEXT: AtomicU64 = AtomicU64::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "performa_core_retry_{tag}_{}_{}.log",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        Scratch(path)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn one_point_plan() -> SweepPlan {
    let template = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(Exponential::with_mean(10.0).unwrap())
        .utilization(0.5)
        .build()
        .unwrap();
    Scenario::new(template, Axis::Rho(vec![0.6])).compile()
}

fn serial_opts() -> SweepOptions {
    SweepOptions::default().with_threads(1)
}

#[test]
fn poisoned_cold_solve_recovers_via_the_hardened_retry() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    // Baseline without faults, for the bit-identity check below.
    let baseline = one_point_plan()
        .with_options(serial_opts())
        .run_map(|s| s.mean_queue_length())
        .expect_values("baseline")[0];

    // One-shot poison: the plain attempt hits a NaN watchdog
    // (NumericalBreakdown); the hardened retry runs unpoisoned.
    let _armed = arm_global(FaultPlan {
        poison: Some(("logred", 1)),
        stall: None,
    });
    let result = one_point_plan()
        .with_options(serial_opts())
        .run_map(|s| s.mean_queue_length());
    assert_eq!(result.stats().retries, 1, "ladder did not fire");
    assert_eq!(result.stats().solved, 1, "hardened retry did not recover");
    // The hardened path solves the same chain to the same tolerance;
    // for this well-conditioned point it reproduces the plain answer.
    let recovered = result.expect_values("recovered")[0];
    assert!(
        (recovered - baseline).abs() <= 1e-9 * baseline.abs().max(1.0),
        "recovered {recovered} vs baseline {baseline}"
    );
}

#[test]
fn stalled_solver_exhausts_the_ladder_and_persists_the_failure() {
    let _serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let scratch = Scratch::new("stall");
    let open = || {
        let (handle, _) = StoreHandle::open(&scratch.0).unwrap();
        SweepOptions::default().with_threads(1).with_store(handle)
    };

    {
        // Persistent stall: the plain attempt *and* the hardened retry
        // both burn their iteration budgets.
        let _armed = arm_global(FaultPlan {
            poison: None,
            stall: Some("logred"),
        });
        let result = one_point_plan()
            .with_options(open())
            .run_map(|s| s.mean_queue_length());
        assert_eq!(result.stats().retries, 1);
        assert_eq!(result.stats().failed, 1);
        assert_eq!(result.stats().store_appends, 1, "failure record not persisted");
        assert!(matches!(
            result.points()[0].outcome,
            Err(CoreError::Qbd(performa_qbd::QbdError::NoConvergence { .. }))
        ));
    }

    // Faults disarmed: the persisted failure now *replays* — the
    // solver (which would succeed!) must not run.
    let replayed = one_point_plan()
        .with_options(open())
        .run_map(|s| s.mean_queue_length());
    assert_eq!(replayed.stats().store_hits, 1);
    assert!(matches!(
        replayed.points()[0].outcome,
        Err(CoreError::ReplayedFailure { .. })
    ));

    // `retry_failed` re-attempts and heals the store.
    let mut opts = open();
    opts.retry_failed = true;
    let healed = one_point_plan()
        .with_options(opts)
        .run_map(|s| s.mean_queue_length());
    assert_eq!(healed.stats().solved, 1);
    assert_eq!(healed.stats().store_appends, 1);

    let final_run = one_point_plan()
        .with_options(open())
        .run_map(|s| s.mean_queue_length());
    assert_eq!(final_run.stats().store_hits, 1);
    assert_eq!(final_run.stats().solved, 1);
}
