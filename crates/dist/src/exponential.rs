use performa_linalg::{Matrix, Vector};

use crate::error::require_positive;
use crate::{DistributionFn, MatrixExp, Moments, Result};

/// The exponential distribution with rate `λ` (mean `1/λ`).
///
/// The memoryless baseline of every model in the paper: task service times,
/// UP durations, and the `T = 1` degenerate case of the truncated power-tail
/// repair distribution.
///
/// # Example
///
/// ```
/// use performa_dist::{Exponential, Moments, DistributionFn};
///
/// let e = Exponential::with_mean(10.0)?;
/// assert_eq!(e.rate(), 0.1);
/// assert!((e.sf(10.0) - (-1.0f64).exp()).abs() < 1e-12);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Errors
    ///
    /// [`crate::DistError::InvalidParameter`] unless `rate` is finite and
    /// positive.
    pub fn new(rate: f64) -> Result<Self> {
        require_positive("rate", rate)?;
        Ok(Exponential { rate })
    }

    /// Creates an exponential distribution with the given mean.
    ///
    /// # Errors
    ///
    /// [`crate::DistError::InvalidParameter`] unless `mean` is finite and
    /// positive.
    pub fn with_mean(mean: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        Ok(Exponential { rate: 1.0 / mean })
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// One-phase matrix-exponential representation `⟨[1], [λ]⟩`.
    pub fn to_matrix_exp(&self) -> MatrixExp {
        MatrixExp::new(
            Vector::from(vec![1.0]),
            Matrix::from_rows(&[&[self.rate]]),
        )
        .expect("a positive rate is always a valid representation")
    }
}

impl Moments for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }

    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }

    fn raw_moment(&self, k: u32) -> f64 {
        // E[X^k] = k! / λ^k
        let mut m = 1.0;
        for i in 1..=k {
            m *= i as f64 / self.rate;
        }
        m
    }
}

impl DistributionFn for Exponential {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-self.rate * x).exp()
        }
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            1.0
        } else {
            (-self.rate * x).exp()
        }
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let e = Exponential::new(4.0).unwrap();
        assert_eq!(e.rate(), 4.0);
        assert_eq!(e.mean(), 0.25);
        assert_eq!(Exponential::with_mean(0.25).unwrap().rate(), 4.0);
    }

    #[test]
    fn invalid_parameters_rejected() {
        assert!(Exponential::new(0.0).is_err());
        assert!(Exponential::new(-1.0).is_err());
        assert!(Exponential::new(f64::NAN).is_err());
        assert!(Exponential::with_mean(f64::INFINITY).is_err());
    }

    #[test]
    fn moments() {
        let e = Exponential::new(2.0).unwrap();
        assert!((e.raw_moment(1) - 0.5).abs() < 1e-15);
        assert!((e.raw_moment(2) - 0.5).abs() < 1e-15);
        assert!((e.raw_moment(3) - 0.75).abs() < 1e-15);
        assert!((e.scv() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn distribution_functions() {
        let e = Exponential::new(1.0).unwrap();
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.sf(-5.0), 1.0);
        assert!((e.cdf(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-15);
        assert!((e.pdf(0.0) - 1.0).abs() < 1e-15);
        assert_eq!(e.pdf(-1.0), 0.0);
    }

    #[test]
    fn matrix_exp_agrees() {
        let e = Exponential::new(3.0).unwrap();
        let me = e.to_matrix_exp();
        assert!((me.mean() - e.mean()).abs() < 1e-14);
        assert!((me.sf(0.7) - e.sf(0.7)).abs() < 1e-12);
    }
}
