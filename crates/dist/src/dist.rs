use crate::{
    Deterministic, DistributionFn, Erlang, Exponential, HyperExponential, LogNormal, MatrixExp,
    Moments, Pareto, Sampler, TruncatedPowerTail, Uniform, Weibull,
};

/// A closed sum type over every distribution family in the crate.
///
/// The simulator and the experiment binaries configure UP, DOWN and task
/// durations through this enum; the analytic model additionally requires
/// the distribution to be phase-type (see [`Dist::to_matrix_exp`]).
///
/// # Example
///
/// ```
/// use performa_dist::{Dist, Exponential, Moments, TruncatedPowerTail};
///
/// let up: Dist = Exponential::with_mean(90.0)?.into();
/// let down: Dist = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?.into();
/// assert!(up.to_matrix_exp().is_some());
/// assert!(down.scv() > up.scv());
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Dist {
    /// Exponential distribution.
    Exponential(Exponential),
    /// Erlang-k distribution.
    Erlang(Erlang),
    /// Hyperexponential mixture.
    HyperExponential(HyperExponential),
    /// Truncated power-tail distribution.
    TruncatedPowerTail(TruncatedPowerTail),
    /// Point mass.
    Deterministic(Deterministic),
    /// Continuous uniform.
    Uniform(Uniform),
    /// Pareto power tail.
    Pareto(Pareto),
    /// Weibull.
    Weibull(Weibull),
    /// Log-normal.
    LogNormal(LogNormal),
}

macro_rules! dispatch {
    ($self:expr, $inner:ident => $expr:expr) => {
        match $self {
            Dist::Exponential($inner) => $expr,
            Dist::Erlang($inner) => $expr,
            Dist::HyperExponential($inner) => $expr,
            Dist::TruncatedPowerTail($inner) => $expr,
            Dist::Deterministic($inner) => $expr,
            Dist::Uniform($inner) => $expr,
            Dist::Pareto($inner) => $expr,
            Dist::Weibull($inner) => $expr,
            Dist::LogNormal($inner) => $expr,
        }
    };
}

impl Dist {
    /// Phase-type / matrix-exponential representation, if the family has
    /// one. `None` for the simulation-only families (deterministic,
    /// uniform, Pareto, Weibull, log-normal).
    pub fn to_matrix_exp(&self) -> Option<MatrixExp> {
        match self {
            Dist::Exponential(d) => Some(d.to_matrix_exp()),
            Dist::Erlang(d) => Some(d.to_matrix_exp()),
            Dist::HyperExponential(d) => Some(d.to_matrix_exp()),
            Dist::TruncatedPowerTail(d) => Some(d.to_matrix_exp()),
            _ => None,
        }
    }

    /// The same family rescaled to a new mean with its shape preserved:
    /// the normalized variability (SCV, tail exponent, stage count, …)
    /// is unchanged and only the time scale moves. This is the
    /// distribution-level primitive behind cycle-preserving
    /// availability rescaling (`ClusterModel::with_availability`).
    ///
    /// # Errors
    ///
    /// [`crate::DistError::InvalidParameter`] when `new_mean` is outside
    /// the family's domain (non-positive or non-finite).
    pub fn with_mean(&self, new_mean: f64) -> Result<Dist, crate::DistError> {
        Ok(match self {
            Dist::Exponential(_) => Exponential::with_mean(new_mean)?.into(),
            Dist::Erlang(d) => Erlang::with_mean(d.stages(), new_mean)?.into(),
            Dist::HyperExponential(d) => {
                // Keep the mixing probabilities; scaling every phase rate
                // by old/new scales the whole distribution in time.
                if !(new_mean.is_finite() && new_mean > 0.0) {
                    return Err(crate::DistError::InvalidParameter {
                        name: "mean",
                        value: new_mean,
                        constraint: "finite and > 0",
                    });
                }
                let factor = d.mean() / new_mean;
                let rates: Vec<f64> = d.rates().iter().map(|r| r * factor).collect();
                HyperExponential::new(d.probs(), &rates)?.into()
            }
            Dist::TruncatedPowerTail(d) => {
                TruncatedPowerTail::with_mean(d.truncation(), d.alpha(), d.theta(), new_mean)?
                    .into()
            }
            Dist::Deterministic(_) => Deterministic::new(new_mean)?.into(),
            Dist::Uniform(d) => {
                if !(new_mean.is_finite() && new_mean > 0.0) {
                    return Err(crate::DistError::InvalidParameter {
                        name: "mean",
                        value: new_mean,
                        constraint: "finite and > 0",
                    });
                }
                let factor = new_mean / d.mean();
                Uniform::new(d.low() * factor, d.high() * factor)?.into()
            }
            Dist::Pareto(d) => Pareto::with_mean(d.alpha(), new_mean)?.into(),
            Dist::Weibull(d) => Weibull::with_mean(d.shape(), new_mean)?.into(),
            Dist::LogNormal(d) => LogNormal::with_mean_scv(new_mean, d.scv())?.into(),
        })
    }

    /// Short human-readable family label (used in experiment output).
    pub fn family(&self) -> &'static str {
        match self {
            Dist::Exponential(_) => "exponential",
            Dist::Erlang(_) => "erlang",
            Dist::HyperExponential(_) => "hyperexponential",
            Dist::TruncatedPowerTail(_) => "tpt",
            Dist::Deterministic(_) => "deterministic",
            Dist::Uniform(_) => "uniform",
            Dist::Pareto(_) => "pareto",
            Dist::Weibull(_) => "weibull",
            Dist::LogNormal(_) => "lognormal",
        }
    }
}

impl Moments for Dist {
    fn mean(&self) -> f64 {
        dispatch!(self, d => d.mean())
    }
    fn variance(&self) -> f64 {
        dispatch!(self, d => d.variance())
    }
    fn raw_moment(&self, k: u32) -> f64 {
        dispatch!(self, d => d.raw_moment(k))
    }
}

impl DistributionFn for Dist {
    fn cdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.cdf(x))
    }
    fn sf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.sf(x))
    }
    fn pdf(&self, x: f64) -> f64 {
        dispatch!(self, d => d.pdf(x))
    }
}

impl Sampler for Dist {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        dispatch!(self, d => d.sample(rng))
    }
}

impl From<Exponential> for Dist {
    fn from(d: Exponential) -> Self {
        Dist::Exponential(d)
    }
}
impl From<Erlang> for Dist {
    fn from(d: Erlang) -> Self {
        Dist::Erlang(d)
    }
}
impl From<HyperExponential> for Dist {
    fn from(d: HyperExponential) -> Self {
        Dist::HyperExponential(d)
    }
}
impl From<TruncatedPowerTail> for Dist {
    fn from(d: TruncatedPowerTail) -> Self {
        Dist::TruncatedPowerTail(d)
    }
}
impl From<Deterministic> for Dist {
    fn from(d: Deterministic) -> Self {
        Dist::Deterministic(d)
    }
}
impl From<Uniform> for Dist {
    fn from(d: Uniform) -> Self {
        Dist::Uniform(d)
    }
}
impl From<Pareto> for Dist {
    fn from(d: Pareto) -> Self {
        Dist::Pareto(d)
    }
}
impl From<Weibull> for Dist {
    fn from(d: Weibull) -> Self {
        Dist::Weibull(d)
    }
}
impl From<LogNormal> for Dist {
    fn from(d: LogNormal) -> Self {
        Dist::LogNormal(d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conversions_and_dispatch() {
        let d: Dist = Exponential::new(2.0).unwrap().into();
        assert_eq!(d.family(), "exponential");
        assert_eq!(d.mean(), 0.5);
        assert!(d.to_matrix_exp().is_some());

        let d: Dist = Pareto::new(1.5, 1.0).unwrap().into();
        assert_eq!(d.family(), "pareto");
        assert!(d.to_matrix_exp().is_none());
        assert!(d.mean().is_finite());
        assert_eq!(d.variance(), f64::INFINITY);
    }

    #[test]
    fn enum_samples_all_families() {
        let mut rng = StdRng::seed_from_u64(42);
        let dists: Vec<Dist> = vec![
            Exponential::new(1.0).unwrap().into(),
            Erlang::new(2, 1.0).unwrap().into(),
            HyperExponential::new(&[0.5, 0.5], &[1.0, 2.0]).unwrap().into(),
            TruncatedPowerTail::with_mean(3, 1.4, 0.5, 1.0).unwrap().into(),
            Deterministic::new(1.0).unwrap().into(),
            Uniform::new(0.0, 2.0).unwrap().into(),
            Pareto::new(2.0, 1.0).unwrap().into(),
            Weibull::new(1.5, 1.0).unwrap().into(),
            LogNormal::new(0.0, 1.0).unwrap().into(),
        ];
        for d in &dists {
            let x = d.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "{}: sample {x}", d.family());
            // CDF is sane at the sample point.
            let c = d.cdf(x);
            assert!((0.0..=1.0).contains(&c), "{}: cdf {c}", d.family());
        }
    }

    #[test]
    fn cdf_sf_consistency_across_families() {
        let dists: Vec<Dist> = vec![
            Exponential::new(0.7).unwrap().into(),
            Erlang::new(3, 1.3).unwrap().into(),
            Uniform::new(1.0, 4.0).unwrap().into(),
            Weibull::new(0.9, 2.0).unwrap().into(),
        ];
        for d in &dists {
            for &x in &[0.5, 1.5, 3.0] {
                assert!(
                    (d.cdf(x) + d.sf(x) - 1.0).abs() < 1e-12,
                    "{} at {x}",
                    d.family()
                );
            }
        }
    }
}
