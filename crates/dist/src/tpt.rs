use crate::error::{require_open_unit, require_positive};
use crate::{DistError, DistributionFn, HyperExponential, MatrixExp, Moments, Result};

/// The truncated power-tail (TPT) distribution of Greiner, Jobmann and
/// Lipsky (*Operations Research* 47(2), 1999) — the paper's canonical
/// high-variance repair-time model.
///
/// A TPT with truncation level `T`, tail exponent `α` and geometric
/// parameter `θ ∈ (0, 1)` is the `T`-phase hyperexponential with
///
/// * entrance probabilities `p_j = c·θ^j` (geometrically decaying), and
/// * rates `μ_j = μ / γ^j` with `γ = θ^{−1/α}` (geometrically growing
///   holding times),
///
/// where `c = (1−θ)/(1−θ^T)` normalizes the probabilities and `μ` sets the
/// mean. Its reliability function behaves like `x^{−α}` over roughly
/// `γ^T` time scales before dropping off exponentially — the truncation
/// that bounded repair times impose in practice. `T = 1` degenerates to the
/// exponential distribution (the paper's "T = 1 (EXP)" curves).
///
/// # Example
///
/// ```
/// use performa_dist::{TruncatedPowerTail, Moments, DistributionFn};
///
/// let t = TruncatedPowerTail::with_mean(9, 1.4, 0.2, 10.0)?;
/// assert_eq!(t.truncation(), 9);
/// // Power-law mid-range: survival decays much slower than an exponential
/// // with the same mean at 20 mean multiples.
/// assert!(t.sf(200.0) > 1e-4);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TruncatedPowerTail {
    truncation: u32,
    alpha: f64,
    theta: f64,
    /// Base rate μ of the fastest phase.
    mu: f64,
    /// Underlying hyperexponential (cached; all queries delegate).
    hyper: HyperExponential,
}

impl TruncatedPowerTail {
    /// Creates a TPT with base rate `mu` for the fastest phase.
    ///
    /// Prefer [`TruncatedPowerTail::with_mean`], which solves for `mu`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `truncation ≥ 1`,
    /// `alpha > 1` (finite mean), `theta ∈ (0, 1)` and `mu > 0`.
    pub fn new(truncation: u32, alpha: f64, theta: f64, mu: f64) -> Result<Self> {
        if truncation == 0 {
            return Err(DistError::InvalidParameter {
                name: "truncation",
                value: 0.0,
                constraint: ">= 1",
            });
        }
        if !(alpha.is_finite() && alpha > 1.0) {
            return Err(DistError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "> 1 (finite mean)",
            });
        }
        require_open_unit("theta", theta)?;
        require_positive("mu", mu)?;

        let t = truncation as usize;
        let gamma = theta.powf(-1.0 / alpha);
        let c = (1.0 - theta) / (1.0 - theta.powi(t as i32));
        let mut probs = Vec::with_capacity(t);
        let mut rates = Vec::with_capacity(t);
        let mut theta_j = 1.0;
        let mut gamma_j = 1.0;
        for _ in 0..t {
            probs.push(c * theta_j);
            rates.push(mu / gamma_j);
            theta_j *= theta;
            gamma_j *= gamma;
        }
        // Guard against drift in the geometric recursion.
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        let hyper = HyperExponential::new(&probs, &rates)?;
        Ok(TruncatedPowerTail {
            truncation,
            alpha,
            theta,
            mu,
            hyper,
        })
    }

    /// Creates a TPT normalized to the given mean (the usual entry point —
    /// the paper fixes MTTR and sweeps `T`).
    ///
    /// # Errors
    ///
    /// Same as [`TruncatedPowerTail::new`], plus `mean > 0`.
    pub fn with_mean(truncation: u32, alpha: f64, theta: f64, mean: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        // Mean with base rate 1 is Σ p_j γ^j; scaling μ divides the mean.
        let unit = TruncatedPowerTail::new(truncation, alpha, theta, 1.0)?;
        let unit_mean = unit.mean();
        TruncatedPowerTail::new(truncation, alpha, theta, unit_mean / mean)
    }

    /// Truncation level `T` (number of phases).
    pub fn truncation(&self) -> u32 {
        self.truncation
    }

    /// Tail exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Geometric parameter `θ`.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// Base rate `μ` of the fastest phase.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Geometric time-scale ratio `γ = θ^{−1/α}` between adjacent phases.
    pub fn gamma(&self) -> f64 {
        self.theta.powf(-1.0 / self.alpha)
    }

    /// The time scale beyond which the tail truncates: the mean holding
    /// time of the slowest phase, `γ^{T−1}/μ`.
    pub fn truncation_scale(&self) -> f64 {
        self.gamma().powi(self.truncation as i32 - 1) / self.mu
    }

    /// View as the underlying hyperexponential mixture.
    pub fn as_hyper_exponential(&self) -> &HyperExponential {
        &self.hyper
    }

    /// Diagonal phase-type representation (delegates to the mixture).
    pub fn to_matrix_exp(&self) -> MatrixExp {
        self.hyper.to_matrix_exp()
    }
}

impl Moments for TruncatedPowerTail {
    fn mean(&self) -> f64 {
        self.hyper.mean()
    }

    fn variance(&self) -> f64 {
        self.hyper.variance()
    }

    fn raw_moment(&self, k: u32) -> f64 {
        self.hyper.raw_moment(k)
    }
}

impl DistributionFn for TruncatedPowerTail {
    fn cdf(&self, x: f64) -> f64 {
        self.hyper.cdf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        self.hyper.sf(x)
    }

    fn pdf(&self, x: f64) -> f64 {
        self.hyper.pdf(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALPHA: f64 = 1.4;
    const THETA: f64 = 0.2;

    #[test]
    fn t1_degenerates_to_exponential() {
        let t = TruncatedPowerTail::with_mean(1, ALPHA, THETA, 10.0).unwrap();
        assert!((t.mean() - 10.0).abs() < 1e-12);
        assert!((t.scv() - 1.0).abs() < 1e-12);
        let e = crate::Exponential::with_mean(10.0).unwrap();
        for &x in &[1.0, 10.0, 50.0] {
            assert!((t.sf(x) - e.sf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn validation() {
        assert!(TruncatedPowerTail::new(0, ALPHA, THETA, 1.0).is_err());
        assert!(TruncatedPowerTail::new(5, 1.0, THETA, 1.0).is_err());
        assert!(TruncatedPowerTail::new(5, ALPHA, 1.0, 1.0).is_err());
        assert!(TruncatedPowerTail::new(5, ALPHA, THETA, 0.0).is_err());
        assert!(TruncatedPowerTail::with_mean(5, ALPHA, THETA, -2.0).is_err());
    }

    #[test]
    fn mean_normalization() {
        for &t in &[1u32, 5, 9, 10, 20] {
            let d = TruncatedPowerTail::with_mean(t, ALPHA, THETA, 10.0).unwrap();
            assert!((d.mean() - 10.0).abs() < 1e-10, "T={t}: mean {}", d.mean());
        }
    }

    #[test]
    fn variance_grows_with_truncation() {
        // Larger T = longer power-law range = higher variance at fixed mean.
        let mut prev = 0.0;
        for &t in &[1u32, 3, 5, 7, 9, 10] {
            let d = TruncatedPowerTail::with_mean(t, ALPHA, THETA, 10.0).unwrap();
            let v = d.variance();
            assert!(v > prev, "T={t}: variance {v} not > {prev}");
            prev = v;
        }
    }

    #[test]
    fn gamma_relation() {
        let d = TruncatedPowerTail::new(5, ALPHA, THETA, 1.0).unwrap();
        // γ^α·θ = 1 by construction.
        assert!((d.gamma().powf(ALPHA) * THETA - 1.0).abs() < 1e-12);
        assert!(d.truncation_scale() > 1.0);
    }

    #[test]
    fn entrance_probabilities_decay_geometrically() {
        let d = TruncatedPowerTail::new(6, ALPHA, THETA, 1.0).unwrap();
        let p = d.as_hyper_exponential().probs();
        for w in p.windows(2) {
            assert!((w[1] / w[0] - THETA).abs() < 1e-12);
        }
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mid_range_tail_follows_power_law() {
        // On the power-law range the survival function should decay roughly
        // like x^{-alpha}: the local log-log slope should be close to -alpha
        // (well within the range, away from both ends).
        let d = TruncatedPowerTail::with_mean(14, ALPHA, THETA, 1.0).unwrap();
        let x1 = 50.0;
        let x2 = 500.0;
        let slope = (d.sf(x2).ln() - d.sf(x1).ln()) / (x2.ln() - x1.ln());
        assert!(
            (slope + ALPHA).abs() < 0.25,
            "log-log slope {slope} too far from -{ALPHA}"
        );
    }

    #[test]
    fn tail_truncates_exponentially_beyond_range() {
        let d = TruncatedPowerTail::with_mean(4, ALPHA, THETA, 1.0).unwrap();
        let scale = d.truncation_scale();
        // Far beyond the truncation scale the survival collapses much faster
        // than the power law would predict.
        let power_law_prediction = d.sf(scale) * (50.0f64).powf(-ALPHA);
        assert!(d.sf(50.0 * scale) < power_law_prediction * 1e-2);
    }

    #[test]
    fn moments_match_paper_setting() {
        // The paper's Figure 1 setting: T = 10, alpha = 1.4, theta = 0.2,
        // MTTR = 10. Sanity-check the scv is large (high variance regime).
        let d = TruncatedPowerTail::with_mean(10, ALPHA, THETA, 10.0).unwrap();
        assert!(d.scv() > 50.0, "scv = {}", d.scv());
        // And the third moment is enormous compared to an exponential's.
        let exp3 = 6.0 * 1000.0; // 3! · mean³
        assert!(d.raw_moment(3) > 100.0 * exp3);
    }

    #[test]
    fn matrix_exp_is_phase_type() {
        let d = TruncatedPowerTail::with_mean(7, ALPHA, THETA, 10.0).unwrap();
        let me = d.to_matrix_exp();
        assert_eq!(me.dim(), 7);
        assert!(me.is_phase_type());
        assert!((me.mean() - 10.0).abs() < 1e-9);
    }
}
