//! Simulation-oriented scalar distribution families.
//!
//! These are not matrix-exponential and therefore only feed the
//! discrete-event simulator (paper Sect. 4 explores nonexponential task
//! times and general UP/DOWN durations): [`Deterministic`], [`Uniform`],
//! [`Pareto`] (the untruncated power-tail reference), [`Weibull`], and
//! [`LogNormal`].

use crate::error::require_positive;
use crate::{DistError, DistributionFn, Moments, Result};

/// The degenerate distribution concentrated at a single point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value` (must be finite and non-negative).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `value` is negative or non-finite.
    pub fn new(value: f64) -> Result<Self> {
        if !(value.is_finite() && value >= 0.0) {
            return Err(DistError::InvalidParameter {
                name: "value",
                value,
                constraint: ">= 0 and finite",
            });
        }
        Ok(Deterministic { value })
    }

    /// The point of the unit mass.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Moments for Deterministic {
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn raw_moment(&self, k: u32) -> f64 {
        self.value.powi(k as i32)
    }
}

impl DistributionFn for Deterministic {
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
    fn pdf(&self, _x: f64) -> f64 {
        // No density; callers should use the CDF.
        f64::NAN
    }
}

/// The continuous uniform distribution on `[low, high]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[low, high]`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `0 ≤ low < high < ∞`.
    pub fn new(low: f64, high: f64) -> Result<Self> {
        if !(low.is_finite() && high.is_finite() && low >= 0.0 && high > low) {
            return Err(DistError::InvalidParameter {
                name: "low/high",
                value: high - low,
                constraint: "0 <= low < high, both finite",
            });
        }
        Ok(Uniform { low, high })
    }

    /// Lower endpoint.
    pub fn low(&self) -> f64 {
        self.low
    }

    /// Upper endpoint.
    pub fn high(&self) -> f64 {
        self.high
    }
}

impl Moments for Uniform {
    fn mean(&self) -> f64 {
        0.5 * (self.low + self.high)
    }
    fn variance(&self) -> f64 {
        let w = self.high - self.low;
        w * w / 12.0
    }
    fn raw_moment(&self, k: u32) -> f64 {
        // (b^{k+1} − a^{k+1}) / ((k+1)(b − a))
        let kk = k as i32;
        (self.high.powi(kk + 1) - self.low.powi(kk + 1))
            / ((k as f64 + 1.0) * (self.high - self.low))
    }
}

impl DistributionFn for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.low) / (self.high - self.low)).clamp(0.0, 1.0)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.low && x <= self.high {
            1.0 / (self.high - self.low)
        } else {
            0.0
        }
    }
}

/// The Pareto (pure power-tail) distribution with shape `alpha` and scale
/// `xm`: `Pr(X > x) = (xm/x)^α` for `x ≥ xm`.
///
/// The untruncated reference for the paper's TPT repair times; its `k`-th
/// moment is infinite when `k ≥ α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    alpha: f64,
    xm: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `alpha > 0` and `xm > 0`.
    pub fn new(alpha: f64, xm: f64) -> Result<Self> {
        require_positive("alpha", alpha)?;
        require_positive("xm", xm)?;
        Ok(Pareto { alpha, xm })
    }

    /// Creates a Pareto with given shape and mean (requires `alpha > 1`).
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `alpha <= 1` (infinite mean) or
    /// `mean <= 0`.
    pub fn with_mean(alpha: f64, mean: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        if alpha <= 1.0 {
            return Err(DistError::InvalidParameter {
                name: "alpha",
                value: alpha,
                constraint: "> 1 for a finite mean",
            });
        }
        Pareto::new(alpha, mean * (alpha - 1.0) / alpha)
    }

    /// Tail exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Scale (minimum value) `xm`.
    pub fn xm(&self) -> f64 {
        self.xm
    }
}

impl Moments for Pareto {
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.xm / (self.alpha - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let m = self.mean();
            self.raw_moment(2) - m * m
        }
    }
    fn raw_moment(&self, k: u32) -> f64 {
        let kf = k as f64;
        if self.alpha <= kf {
            f64::INFINITY
        } else {
            self.alpha * self.xm.powi(k as i32) / (self.alpha - kf)
        }
    }
}

impl DistributionFn for Pareto {
    fn cdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            1.0 - (self.xm / x).powf(self.alpha)
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.xm {
            0.0
        } else {
            self.alpha * self.xm.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }
}

/// The Weibull distribution with shape `k` and scale `λ`:
/// `Pr(X > x) = exp(−(x/λ)^k)`.
///
/// Sub-exponential (heavy-ish) tails for `k < 1`; a common empirical repair
/// model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless both parameters are finite
    /// positive.
    pub fn new(shape: f64, scale: f64) -> Result<Self> {
        require_positive("shape", shape)?;
        require_positive("scale", scale)?;
        Ok(Weibull { shape, scale })
    }

    /// Creates a Weibull with given shape and mean.
    ///
    /// # Errors
    ///
    /// Same as [`Weibull::new`].
    pub fn with_mean(shape: f64, mean: f64) -> Result<Self> {
        require_positive("shape", shape)?;
        require_positive("mean", mean)?;
        let scale = mean / gamma_fn(1.0 + 1.0 / shape);
        Weibull::new(shape, scale)
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Moments for Weibull {
    fn mean(&self) -> f64 {
        self.scale * gamma_fn(1.0 + 1.0 / self.shape)
    }
    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2) - m * m
    }
    fn raw_moment(&self, k: u32) -> f64 {
        self.scale.powi(k as i32) * gamma_fn(1.0 + k as f64 / self.shape)
    }
}

impl DistributionFn for Weibull {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            1.0 - (-(x / self.scale).powf(self.shape)).exp()
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = x / self.scale;
        (self.shape / self.scale) * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }
}

/// The log-normal distribution: `ln X ~ Normal(mu, sigma²)`.
///
/// Another empirically popular repair-time model with moderate-to-heavy
/// right tails.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `sigma > 0` and `mu` finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self> {
        if !mu.is_finite() {
            return Err(DistError::InvalidParameter {
                name: "mu",
                value: mu,
                constraint: "finite",
            });
        }
        require_positive("sigma", sigma)?;
        Ok(LogNormal { mu, sigma })
    }

    /// Creates a log-normal with the given mean and squared coefficient of
    /// variation.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] unless `mean > 0` and `scv > 0`.
    pub fn with_mean_scv(mean: f64, scv: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        require_positive("scv", scv)?;
        let sigma2 = (1.0 + scv).ln();
        let mu = mean.ln() - 0.5 * sigma2;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Location of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Moments for LogNormal {
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
    fn raw_moment(&self, k: u32) -> f64 {
        let kf = k as f64;
        (kf * self.mu + 0.5 * kf * kf * self.sigma * self.sigma).exp()
    }
}

impl DistributionFn for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            0.5 * (1.0 + erf((x.ln() - self.mu) / (self.sigma * std::f64::consts::SQRT_2)))
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
}

/// Gamma function via the Lanczos approximation (g = 7, 9 terms).
///
/// Accurate to ~15 significant digits for positive arguments, which covers
/// every use in this crate (Weibull moments).
pub(crate) fn gamma_fn(x: f64) -> f64 {
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.5203681218851,
        -1259.1392167224028,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507343278686905,
        -0.13857109526572012,
        9.984_369_578_019_572e-6,
        1.5056327351493116e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        std::f64::consts::PI / ((std::f64::consts::PI * x).sin() * gamma_fn(1.0 - x))
    } else {
        let x = x - 1.0;
        let mut a = COEF[0];
        let t = x + G + 0.5;
        for (i, &c) in COEF.iter().enumerate().skip(1) {
            a += c / (x + i as f64);
        }
        (2.0 * std::f64::consts::PI).sqrt() * t.powf(x + 0.5) * (-t).exp() * a
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (absolute error < 1.5e−7, ample for plotting and tests).
pub(crate) fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let d = Deterministic::new(5.0).unwrap();
        assert_eq!(d.mean(), 5.0);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.raw_moment(3), 125.0);
        assert_eq!(d.cdf(4.9), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert!(Deterministic::new(-1.0).is_err());
        assert!(Deterministic::new(f64::NAN).is_err());
    }

    #[test]
    fn uniform() {
        let u = Uniform::new(2.0, 6.0).unwrap();
        assert_eq!(u.mean(), 4.0);
        assert!((u.variance() - 16.0 / 12.0).abs() < 1e-14);
        assert!((u.raw_moment(2) - (u.variance() + 16.0)).abs() < 1e-12);
        assert_eq!(u.cdf(2.0), 0.0);
        assert_eq!(u.cdf(6.0), 1.0);
        assert_eq!(u.cdf(4.0), 0.5);
        assert_eq!(u.pdf(3.0), 0.25);
        assert_eq!(u.pdf(7.0), 0.0);
        assert!(Uniform::new(3.0, 3.0).is_err());
        assert!(Uniform::new(-1.0, 2.0).is_err());
    }

    #[test]
    fn pareto_moments_and_tail() {
        let p = Pareto::with_mean(1.4, 10.0).unwrap();
        assert!((p.mean() - 10.0).abs() < 1e-12);
        assert_eq!(p.variance(), f64::INFINITY);
        assert_eq!(p.raw_moment(2), f64::INFINITY);
        // Exact power-law tail.
        let x = 100.0;
        assert!((p.sf(x) - (p.xm() / x).powf(1.4)).abs() < 1e-15);
        assert!(Pareto::with_mean(1.0, 10.0).is_err());
    }

    #[test]
    fn weibull_mean_and_exponential_special_case() {
        // Shape 1 is exponential.
        let w = Weibull::new(1.0, 2.0).unwrap();
        assert!((w.mean() - 2.0).abs() < 1e-12);
        assert!((w.scv() - 1.0).abs() < 1e-10);
        let e = crate::Exponential::with_mean(2.0).unwrap();
        use crate::DistributionFn as _;
        for &x in &[0.5, 2.0, 5.0] {
            assert!((w.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
        // with_mean hits the target.
        let w = Weibull::with_mean(0.5, 10.0).unwrap();
        assert!((w.mean() - 10.0).abs() < 1e-9);
        assert!(w.scv() > 1.0); // shape < 1 is high variance
    }

    #[test]
    fn lognormal_with_mean_scv() {
        let ln = LogNormal::with_mean_scv(10.0, 5.3).unwrap();
        assert!((ln.mean() - 10.0).abs() < 1e-10);
        assert!((ln.scv() - 5.3).abs() < 1e-9);
        // Median = exp(mu) < mean for right-skewed lognormal.
        assert!(ln.mu().exp() < ln.mean());
        // CDF at the median is 1/2 (within erf approximation error).
        assert!((ln.cdf(ln.mu().exp()) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gamma_function_known_values() {
        assert!((gamma_fn(1.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(2.0) - 1.0).abs() < 1e-12);
        assert!((gamma_fn(5.0) - 24.0).abs() < 1e-10);
        assert!((gamma_fn(0.5) - std::f64::consts::PI.sqrt()).abs() < 1e-10);
        assert!((gamma_fn(1.5) - 0.5 * std::f64::consts::PI.sqrt()).abs() < 1e-11);
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!(erf(5.0) > 0.999999);
    }

    #[test]
    fn pdfs_integrate_to_one() {
        let w = Weibull::new(0.7, 3.0).unwrap();
        let dx = 1e-3;
        let total: f64 = (1..200_000).map(|i| w.pdf(i as f64 * dx) * dx).sum();
        assert!((total - 1.0).abs() < 5e-3, "weibull integral {total}");

        let ln = LogNormal::new(0.0, 0.5).unwrap();
        let total: f64 = (1..50_000).map(|i| ln.pdf(i as f64 * dx) * dx).sum();
        assert!((total - 1.0).abs() < 2e-3, "lognormal integral {total}");
    }
}
