//! Probability distributions for performability modeling.
//!
//! This crate provides the distribution machinery required by the DSN 2007
//! paper *Performability Models for Multi-Server Systems with High-Variance
//! Repair Durations*:
//!
//! * [`MatrixExp`] — matrix-exponential / phase-type representations
//!   `⟨p, B⟩` in Lipsky's LAQT notation, with moments, density, CDF and
//!   reliability function. These feed the analytic MMPP construction.
//! * Concrete distribution families: [`Exponential`], [`Erlang`],
//!   [`HyperExponential`], and the centerpiece of the paper — the
//!   **truncated power-tail** distribution [`TruncatedPowerTail`] of
//!   Greiner, Jobmann and Lipsky.
//! * [`fit::hyp2_from_moments`] — the 3-moment HYP-2 fit used in the paper's
//!   Sect. 3.2 to replace a T-phase TPT with a 2-phase hyperexponential.
//! * Simulation-only families ([`Deterministic`], [`Uniform`], [`Pareto`],
//!   [`Weibull`], [`LogNormal`]) and the [`Sampler`] trait used by the
//!   discrete-event simulator, plus the closed enum [`Dist`] for
//!   configuration.
//!
//! # Example: the paper's repair-time distribution
//!
//! ```
//! use performa_dist::{TruncatedPowerTail, Moments};
//!
//! // TPT with tail exponent α = 1.4, θ = 0.2, truncation T = 10,
//! // normalized to mean repair time 10 (the paper's MTTR).
//! let tpt = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?;
//! assert!((tpt.mean() - 10.0).abs() < 1e-12);
//! // High variance is the point: squared coefficient of variation >> 1.
//! assert!(tpt.scv() > 10.0);
//! # Ok::<(), performa_dist::DistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod erlang;
mod error;
mod exponential;
mod hyperexp;
mod me;
mod sample;
mod simple;
mod spec;
mod tpt;

pub mod fit;

pub use dist::Dist;
pub use erlang::Erlang;
pub use error::DistError;
pub use exponential::Exponential;
pub use hyperexp::HyperExponential;
pub use me::MatrixExp;
pub use sample::{standard_normal, Sampler};
pub use simple::{Deterministic, LogNormal, Pareto, Uniform, Weibull};
pub use spec::DistSpec;
pub use tpt::TruncatedPowerTail;

/// Result alias for fallible distribution operations.
pub type Result<T> = std::result::Result<T, DistError>;

/// Moments and basic summary statistics shared by every distribution family.
pub trait Moments {
    /// Mean (first raw moment).
    fn mean(&self) -> f64;

    /// Variance.
    fn variance(&self) -> f64;

    /// `k`-th raw moment `E[X^k]` for `k ≥ 1`.
    fn raw_moment(&self, k: u32) -> f64;

    /// Squared coefficient of variation `Var/Mean²`.
    fn scv(&self) -> f64 {
        let m = self.mean();
        self.variance() / (m * m)
    }

    /// Standard deviation.
    fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Pointwise distribution functions.
pub trait DistributionFn {
    /// Cumulative distribution function `Pr(X ≤ x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Reliability (survival) function `Pr(X > x)`.
    fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Probability density function.
    fn pdf(&self, x: f64) -> f64;
}
