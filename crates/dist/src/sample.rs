//! Random-variate generation for the discrete-event simulator.

use rand::Rng;

use crate::{
    Deterministic, Erlang, Exponential, HyperExponential, LogNormal, MatrixExp, Pareto,
    TruncatedPowerTail, Uniform, Weibull,
};

/// Draws a standard normal variate via the Box–Muller transform.
///
/// Implemented locally so the workspace needs no `rand_distr` dependency.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid ln(0) by sampling the open interval.
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Inverse-CDF exponential sampling, shared by several families.
#[inline]
fn sample_exp<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > 0.0 {
            break u;
        }
    };
    -u.ln() / rate
}

/// Random-variate generation.
///
/// Every distribution family in this crate that can be sampled path-wise
/// implements `Sampler`. The trait is object-safe so the simulator can hold
/// heterogeneous boxed samplers.
pub trait Sampler {
    /// Draws one variate.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64;
}

impl Sampler for Exponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        sample_exp(rng, self.rate())
    }
}

impl Sampler for Erlang {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (0..self.stages()).map(|_| sample_exp(rng, self.rate())).sum()
    }
}

impl Sampler for HyperExponential {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (p, l) in self.probs().iter().zip(self.rates()) {
            acc += p;
            if u < acc {
                return sample_exp(rng, *l);
            }
        }
        // Floating-point slack: fall through to the last phase.
        sample_exp(rng, *self.rates().last().expect("non-empty by validation"))
    }
}

impl Sampler for TruncatedPowerTail {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        self.as_hyper_exponential().sample(rng)
    }
}

impl Sampler for Deterministic {
    fn sample(&self, _rng: &mut dyn rand::RngCore) -> f64 {
        self.value()
    }
}

impl Sampler for Uniform {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = rng.gen();
        self.low() + u * (self.high() - self.low())
    }
}

impl Sampler for Pareto {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        self.xm() * u.powf(-1.0 / self.alpha())
    }
}

impl Sampler for Weibull {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        let u: f64 = loop {
            let u: f64 = rng.gen();
            if u > 0.0 {
                break u;
            }
        };
        self.scale() * (-u.ln()).powf(1.0 / self.shape())
    }
}

impl Sampler for LogNormal {
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        (self.mu() + self.sigma() * standard_normal(rng)).exp()
    }
}

impl Sampler for MatrixExp {
    /// Path-wise phase-process sampling.
    ///
    /// # Panics
    ///
    /// Panics if the representation is not phase-type
    /// (see [`MatrixExp::is_phase_type`]); check before sampling.
    fn sample(&self, rng: &mut dyn rand::RngCore) -> f64 {
        assert!(
            self.is_phase_type(),
            "only phase-type representations can be sampled path-wise"
        );
        let n = self.dim();
        let p = self.entrance();
        // Choose the entry phase.
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut phase = n - 1;
        for i in 0..n {
            acc += p[i];
            if u < acc {
                phase = i;
                break;
            }
        }
        let b = self.rate_matrix();
        let exit = self.exit_rates();
        let mut total = 0.0;
        loop {
            let hold_rate = b[(phase, phase)];
            total += sample_exp(rng, hold_rate);
            // Exit with probability exit[phase]/hold_rate, else jump.
            let u: f64 = rng.gen();
            let mut acc = exit[phase] / hold_rate;
            if u < acc {
                return total;
            }
            let mut next = phase;
            for j in 0..n {
                if j == phase {
                    continue;
                }
                acc += (-b[(phase, j)]).max(0.0) / hold_rate;
                if u < acc {
                    next = j;
                    break;
                }
            }
            if next == phase {
                // Numerical slack: treat as exit.
                return total;
            }
            phase = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Moments;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_mean<S: Sampler>(s: &S, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let x = s.sample(&mut rng);
            assert!(x.is_finite() && x >= 0.0, "sample {x} out of range");
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        (mean, sumsq / n as f64 - mean * mean)
    }

    #[test]
    fn exponential_sample_mean_converges() {
        let e = Exponential::new(2.0).unwrap();
        let (m, v) = sample_mean(&e, 200_000, 1);
        assert!((m - 0.5).abs() < 0.01);
        assert!((v - 0.25).abs() < 0.02);
    }

    #[test]
    fn erlang_sample_matches_moments() {
        let e = Erlang::new(4, 2.0).unwrap();
        let (m, v) = sample_mean(&e, 100_000, 2);
        assert!((m - 2.0).abs() < 0.03);
        assert!((v - 1.0).abs() < 0.05);
    }

    #[test]
    fn hyperexp_sample_matches_moments() {
        let h = HyperExponential::new(&[0.3, 0.7], &[0.5, 5.0]).unwrap();
        let (m, _) = sample_mean(&h, 200_000, 3);
        assert!((m - h.mean()).abs() < 0.02);
    }

    #[test]
    fn deterministic_and_uniform() {
        let d = Deterministic::new(7.0).unwrap();
        let (m, v) = sample_mean(&d, 100, 4);
        assert_eq!(m, 7.0);
        assert!(v.abs() < 1e-12);

        let u = Uniform::new(1.0, 3.0).unwrap();
        let (m, v) = sample_mean(&u, 100_000, 5);
        assert!((m - 2.0).abs() < 0.01);
        assert!((v - 1.0 / 3.0).abs() < 0.01);
    }

    #[test]
    fn pareto_tail_index_recovered() {
        // Median of Pareto = xm * 2^{1/alpha}; robust against infinite variance.
        let p = Pareto::new(1.4, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<f64> = (0..100_001).map(|_| p.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[50_000];
        assert!((median - 2.0f64.powf(1.0 / 1.4)).abs() < 0.02);
    }

    #[test]
    fn weibull_and_lognormal_means() {
        let w = Weibull::with_mean(0.8, 5.0).unwrap();
        let (m, _) = sample_mean(&w, 200_000, 7);
        assert!((m - 5.0).abs() < 0.08);

        let ln = LogNormal::with_mean_scv(10.0, 2.0).unwrap();
        let (m, _) = sample_mean(&ln, 200_000, 8);
        assert!((m - 10.0).abs() < 0.25);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 200_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let z = standard_normal(&mut rng);
            sum += z;
            sumsq += z * z;
        }
        assert!((sum / n as f64).abs() < 0.01);
        assert!((sumsq / n as f64 - 1.0).abs() < 0.02);
    }

    #[test]
    fn tpt_sampling_matches_analytic_mean() {
        let t = TruncatedPowerTail::with_mean(5, 1.4, 0.5, 10.0).unwrap();
        let (m, _) = sample_mean(&t, 400_000, 10);
        // High variance: generous tolerance.
        assert!((m - 10.0).abs() < 0.5, "sample mean {m}");
    }

    #[test]
    fn matrix_exp_phase_sampling_erlang() {
        let me = Erlang::new(3, 1.5).unwrap().to_matrix_exp();
        let (m, v) = sample_mean(&me, 100_000, 11);
        assert!((m - 2.0).abs() < 0.03);
        assert!((v - 3.0 / 2.25).abs() < 0.05);
    }

    #[test]
    fn matrix_exp_phase_sampling_hyperexp() {
        let me = HyperExponential::new(&[0.4, 0.6], &[1.0, 4.0])
            .unwrap()
            .to_matrix_exp();
        let (m, _) = sample_mean(&me, 100_000, 12);
        assert!((m - 0.55).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "phase-type")]
    fn non_ph_sampling_panics() {
        use performa_linalg::{Matrix, Vector};
        let me = MatrixExp::new(Vector::from(vec![1.0]), Matrix::from_rows(&[&[-1.0]])).unwrap();
        let mut rng = StdRng::seed_from_u64(0);
        let _ = me.sample(&mut rng);
    }

    #[test]
    fn sampler_is_object_safe() {
        let boxed: Vec<Box<dyn Sampler>> = vec![
            Box::new(Exponential::new(1.0).unwrap()),
            Box::new(Deterministic::new(1.0).unwrap()),
        ];
        let mut rng = StdRng::seed_from_u64(13);
        for s in &boxed {
            let _ = s.sample(&mut rng);
        }
    }
}
