use std::fmt;

/// Errors produced when constructing or fitting distributions.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A parameter was outside its documented domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
        /// The documented constraint, e.g. `"> 0"`.
        constraint: &'static str,
    },
    /// A moment set cannot be realized by the requested family.
    InfeasibleMoments {
        /// Explanation of the violated feasibility condition.
        message: String,
    },
    /// A matrix-exponential representation failed validation.
    InvalidRepresentation {
        /// Explanation of the defect.
        message: String,
    },
    /// An underlying linear-algebra operation failed.
    Linalg(performa_linalg::LinalgError),
    /// A textual distribution spec failed to parse (see `DistSpec`).
    InvalidSpec {
        /// The offending spec string.
        spec: String,
        /// Explanation of the defect.
        message: String,
    },
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::InvalidParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter `{name}` = {value} violates constraint {constraint}"),
            DistError::InfeasibleMoments { message } => {
                write!(f, "infeasible moment set: {message}")
            }
            DistError::InvalidRepresentation { message } => {
                write!(f, "invalid matrix-exponential representation: {message}")
            }
            DistError::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            DistError::InvalidSpec { spec, message } => {
                write!(f, "invalid distribution spec `{spec}`: {message}")
            }
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<performa_linalg::LinalgError> for DistError {
    fn from(e: performa_linalg::LinalgError) -> Self {
        DistError::Linalg(e)
    }
}

/// Validates that `value` is strictly positive and finite.
pub(crate) fn require_positive(name: &'static str, value: f64) -> Result<(), DistError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(DistError::InvalidParameter {
            name,
            value,
            constraint: "finite and > 0",
        })
    }
}

/// Validates that `value` lies in the open interval `(0, 1)`.
pub(crate) fn require_open_unit(name: &'static str, value: f64) -> Result<(), DistError> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(())
    } else {
        Err(DistError::InvalidParameter {
            name,
            value,
            constraint: "in (0, 1)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = DistError::InvalidParameter {
            name: "rate",
            value: -1.0,
            constraint: "> 0",
        };
        assert!(e.to_string().contains("rate"));

        let e = DistError::InfeasibleMoments {
            message: "c2 < 1".into(),
        };
        assert!(e.to_string().contains("c2 < 1"));
    }

    #[test]
    fn linalg_error_wraps_with_source() {
        use std::error::Error;
        let inner = performa_linalg::LinalgError::Singular { pivot: 0 };
        let e = DistError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn validators() {
        assert!(require_positive("x", 1.0).is_ok());
        assert!(require_positive("x", 0.0).is_err());
        assert!(require_positive("x", f64::NAN).is_err());
        assert!(require_positive("x", f64::INFINITY).is_err());
        assert!(require_open_unit("p", 0.5).is_ok());
        assert!(require_open_unit("p", 1.0).is_err());
        assert!(require_open_unit("p", 0.0).is_err());
    }
}
