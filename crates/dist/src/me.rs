use performa_linalg::{expm::expm, lu::Lu, Matrix, Vector};

use crate::{DistError, DistributionFn, Moments, Result};

/// A matrix-exponential (ME) distribution `⟨p, B⟩` in Lipsky's LAQT
/// notation, as used by the paper for UP and DOWN (repair) durations.
///
/// * `p` — the entrance (startup) row vector; `p_i` is the probability of
///   starting in phase `i`.
/// * `B` — the *process rate matrix*; `−B` is the sub-generator of the
///   transient phase process. The reliability function is
///   `R(x) = p · exp(−B·x) · ε` and the raw moments are
///   `E[Xⁿ] = n! · p · B⁻ⁿ · ε`.
///
/// Every phase-type (PH) distribution is an ME distribution with
/// `B` having a positive diagonal, non-positive off-diagonal and
/// non-negative row sums; only such representations can be sampled by
/// simulation (see [`MatrixExp::is_phase_type`]).
///
/// # Example
///
/// ```
/// use performa_dist::{HyperExponential, Moments};
///
/// let h = HyperExponential::new(&[0.5, 0.5], &[1.0, 3.0])?;
/// let me = h.to_matrix_exp();
/// assert!((me.mean() - h.mean()).abs() < 1e-12);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixExp {
    p: Vector,
    b: Matrix,
}

impl MatrixExp {
    /// Creates a validated matrix-exponential representation.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidRepresentation`] when shapes disagree, `p` is not
    /// a probability vector, or `B` is singular (infinite mean).
    pub fn new(p: Vector, b: Matrix) -> Result<Self> {
        if !b.is_square() {
            return Err(DistError::InvalidRepresentation {
                message: format!("B must be square, got {}x{}", b.nrows(), b.ncols()),
            });
        }
        if p.len() != b.nrows() {
            return Err(DistError::InvalidRepresentation {
                message: format!(
                    "entrance vector has length {}, B is {}x{}",
                    p.len(),
                    b.nrows(),
                    b.ncols()
                ),
            });
        }
        if p.iter().any(|&v| v < -1e-14 || !v.is_finite()) {
            return Err(DistError::InvalidRepresentation {
                message: "entrance vector must be non-negative and finite".into(),
            });
        }
        let sum = p.sum();
        if (sum - 1.0).abs() > 1e-10 {
            return Err(DistError::InvalidRepresentation {
                message: format!("entrance vector must sum to 1, sums to {sum}"),
            });
        }
        if Lu::factor(&b).is_err() {
            return Err(DistError::InvalidRepresentation {
                message: "B is singular: the distribution would have infinite mean".into(),
            });
        }
        Ok(MatrixExp { p, b })
    }

    /// Number of phases.
    pub fn dim(&self) -> usize {
        self.p.len()
    }

    /// The entrance probability vector `p`.
    pub fn entrance(&self) -> &Vector {
        &self.p
    }

    /// The process rate matrix `B` (so `−B` is the phase sub-generator).
    pub fn rate_matrix(&self) -> &Matrix {
        &self.b
    }

    /// Exit-rate column vector `B·ε`: completion rate out of each phase.
    pub fn exit_rates(&self) -> Vector {
        self.b.row_sums()
    }

    /// Returns `true` if the representation is a proper phase-type (PH)
    /// distribution: positive diagonal, non-positive off-diagonal, and
    /// non-negative exit rates. Only PH representations can be sampled
    /// path-wise by the simulator.
    pub fn is_phase_type(&self) -> bool {
        let n = self.dim();
        for i in 0..n {
            if self.b[(i, i)] <= 0.0 {
                return false;
            }
            for j in 0..n {
                if i != j && self.b[(i, j)] > 1e-14 {
                    return false;
                }
            }
        }
        self.exit_rates().iter().all(|&r| r >= -1e-12)
    }


    /// Convolution: the distribution of the **sum** of two independent
    /// matrix-exponential variables (series composition of the phase
    /// processes). The result has `self.dim() + other.dim()` phases.
    ///
    /// Useful for composing multi-stage UP/DOWN periods, e.g. "detection
    /// delay followed by repair".
    pub fn convolve(&self, other: &MatrixExp) -> MatrixExp {
        let n1 = self.dim();
        let n2 = other.dim();
        let mut b = Matrix::zeros(n1 + n2, n1 + n2);
        let exit1 = self.exit_rates();
        for i in 0..n1 {
            for j in 0..n1 {
                b[(i, j)] = self.b[(i, j)];
            }
            // Completion of stage 1 enters stage 2 (negated: off-diagonal
            // of B is minus the transition rate).
            for j in 0..n2 {
                b[(i, n1 + j)] = -exit1[i] * other.p[j];
            }
        }
        for i in 0..n2 {
            for j in 0..n2 {
                b[(n1 + i, n1 + j)] = other.b[(i, j)];
            }
        }
        let mut p = Vector::zeros(n1 + n2);
        for i in 0..n1 {
            p[i] = self.p[i];
        }
        MatrixExp::new(p, b).expect("series composition preserves validity")
    }

    /// Probabilistic mixture: with probability `w` draw from `self`,
    /// otherwise from `other`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ w ≤ 1`.
    pub fn mixture(&self, w: f64, other: &MatrixExp) -> MatrixExp {
        assert!((0.0..=1.0).contains(&w), "mixture weight must be in [0, 1]");
        let n1 = self.dim();
        let n2 = other.dim();
        let mut b = Matrix::zeros(n1 + n2, n1 + n2);
        for i in 0..n1 {
            for j in 0..n1 {
                b[(i, j)] = self.b[(i, j)];
            }
        }
        for i in 0..n2 {
            for j in 0..n2 {
                b[(n1 + i, n1 + j)] = other.b[(i, j)];
            }
        }
        let mut p = Vector::zeros(n1 + n2);
        for i in 0..n1 {
            p[i] = w * self.p[i];
        }
        for i in 0..n2 {
            p[n1 + i] = (1.0 - w) * other.p[i];
        }
        MatrixExp::new(p, b).expect("block-diagonal mixture preserves validity")
    }

    /// Raw moment `E[X^k] = k! · p · B⁻ᵏ · ε`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (the zeroth moment is trivially 1).
    fn raw_moment_impl(&self, k: u32) -> f64 {
        assert!(k >= 1, "raw moments are defined for k >= 1");
        let lu = Lu::factor(&self.b).expect("validated non-singular at construction");
        // Compute p · B^{-k} by repeatedly solving x·B = previous.
        let mut x = self.p.clone();
        for _ in 0..k {
            x = lu.solve_left_vec(&x).expect("dimension fixed");
        }
        let mut factorial = 1.0;
        for i in 2..=k {
            factorial *= i as f64;
        }
        factorial * x.sum()
    }
}

impl Moments for MatrixExp {
    fn mean(&self) -> f64 {
        self.raw_moment_impl(1)
    }

    fn variance(&self) -> f64 {
        let m1 = self.raw_moment_impl(1);
        self.raw_moment_impl(2) - m1 * m1
    }

    fn raw_moment(&self, k: u32) -> f64 {
        self.raw_moment_impl(k)
    }
}

impl DistributionFn for MatrixExp {
    fn cdf(&self, x: f64) -> f64 {
        1.0 - self.sf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 1.0;
        }
        let e = expm(&(&self.b * (-x))).expect("finite matrix");
        let r = self.p.dot(&e.row_sums());
        r.clamp(0.0, 1.0)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        // f(x) = p · exp(−Bx) · B · ε
        let e = expm(&(&self.b * (-x))).expect("finite matrix");
        let exit = self.exit_rates();
        let w = e.mul_vec(&exit);
        self.p.dot(&w).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Erlang, Exponential, HyperExponential};

    #[test]
    fn exponential_moments() {
        let me = Exponential::new(2.0).unwrap().to_matrix_exp();
        assert!((me.mean() - 0.5).abs() < 1e-14);
        assert!((me.variance() - 0.25).abs() < 1e-14);
        assert!((me.raw_moment(3) - 6.0 / 8.0).abs() < 1e-12);
        assert!(me.is_phase_type());
    }

    #[test]
    fn erlang_is_phase_type_with_low_scv() {
        let me = Erlang::new(4, 4.0).unwrap().to_matrix_exp();
        assert!(me.is_phase_type());
        assert!((me.mean() - 1.0).abs() < 1e-12);
        // Erlang-k has scv = 1/k.
        assert!((me.scv() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn reliability_function_matches_scalar_exponential() {
        let me = Exponential::new(1.5).unwrap().to_matrix_exp();
        for &x in &[0.0, 0.3, 1.0, 4.0] {
            assert!((me.sf(x) - (-1.5 * x).exp()).abs() < 1e-12);
            assert!((me.pdf(x) - 1.5 * (-1.5 * x).exp()).abs() < 1e-10);
        }
        assert_eq!(me.sf(-1.0), 1.0);
        assert_eq!(me.pdf(-1.0), 0.0);
    }

    #[test]
    fn hyperexp_reliability_is_mixture() {
        let h = HyperExponential::new(&[0.3, 0.7], &[1.0, 10.0]).unwrap();
        let me = h.to_matrix_exp();
        for &x in &[0.1_f64, 1.0, 2.5] {
            let expect = 0.3 * (-x).exp() + 0.7 * (-10.0 * x).exp();
            assert!((me.sf(x) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn validation_rejects_bad_input() {
        // Rectangular B.
        assert!(MatrixExp::new(Vector::ones(2), Matrix::zeros(2, 3)).is_err());
        // Length mismatch.
        assert!(MatrixExp::new(Vector::ones(3), Matrix::identity(2)).is_err());
        // Entrance not summing to one.
        assert!(MatrixExp::new(Vector::from(vec![0.4, 0.4]), Matrix::identity(2)).is_err());
        // Negative entrance probability.
        assert!(MatrixExp::new(Vector::from(vec![1.5, -0.5]), Matrix::identity(2)).is_err());
        // Singular B.
        assert!(MatrixExp::new(Vector::from(vec![1.0]), Matrix::zeros(1, 1)).is_err());
    }

    #[test]
    fn non_phase_type_detected() {
        // Negative diagonal is not PH.
        let b = Matrix::from_rows(&[&[-1.0]]);
        // This B is non-singular so construction succeeds, but it is not PH
        // (and not even a valid ME density — the check is structural).
        let me = MatrixExp::new(Vector::from(vec![1.0]), b).unwrap();
        assert!(!me.is_phase_type());
    }

    #[test]
    fn cdf_complements_sf() {
        let me = Erlang::new(3, 2.0).unwrap().to_matrix_exp();
        for &x in &[0.0, 0.5, 2.0] {
            assert!((me.cdf(x) + me.sf(x) - 1.0).abs() < 1e-14);
        }
    }


    #[test]
    fn convolution_of_exponentials_is_erlang() {
        let e = Exponential::new(2.0).unwrap().to_matrix_exp();
        let conv = e.convolve(&e);
        let erl = Erlang::new(2, 2.0).unwrap().to_matrix_exp();
        assert_eq!(conv.dim(), 2);
        assert!((conv.mean() - erl.mean()).abs() < 1e-12);
        assert!((conv.raw_moment(2) - erl.raw_moment(2)).abs() < 1e-12);
        for &x in &[0.2, 1.0, 3.0] {
            assert!((conv.sf(x) - erl.sf(x)).abs() < 1e-10, "x={x}");
        }
        assert!(conv.is_phase_type());
    }

    #[test]
    fn convolution_means_add() {
        let a = Erlang::new(2, 1.0).unwrap().to_matrix_exp();
        let b = HyperExponential::new(&[0.3, 0.7], &[0.5, 5.0])
            .unwrap()
            .to_matrix_exp();
        let c = a.convolve(&b);
        assert!((c.mean() - (a.mean() + b.mean())).abs() < 1e-10);
        // Variances add for independent sums.
        assert!((c.variance() - (a.variance() + b.variance())).abs() < 1e-9);
    }

    #[test]
    fn mixture_interpolates() {
        let fast = Exponential::new(10.0).unwrap().to_matrix_exp();
        let slow = Exponential::new(0.1).unwrap().to_matrix_exp();
        let m = fast.mixture(0.9, &slow);
        assert_eq!(m.dim(), 2);
        assert!((m.mean() - (0.9 * 0.1 + 0.1 * 10.0)).abs() < 1e-10);
        // Mixture sf is the weighted sf.
        for &x in &[0.5, 2.0] {
            let expect = 0.9 * fast.sf(x) + 0.1 * slow.sf(x);
            assert!((m.sf(x) - expect).abs() < 1e-10);
        }
        assert!(m.is_phase_type());
    }

    #[test]
    fn mixture_extremes() {
        let a = Exponential::new(1.0).unwrap().to_matrix_exp();
        let b = Exponential::new(3.0).unwrap().to_matrix_exp();
        assert!((a.mixture(1.0, &b).mean() - 1.0).abs() < 1e-12);
        assert!((a.mixture(0.0, &b).mean() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn bad_mixture_weight_panics() {
        let a = Exponential::new(1.0).unwrap().to_matrix_exp();
        let _ = a.mixture(1.5, &a);
    }

    #[test]
    fn exit_rates_of_erlang() {
        // Only the last Erlang stage exits.
        let me = Erlang::new(3, 2.0).unwrap().to_matrix_exp();
        let exit = me.exit_rates();
        assert!((exit[0]).abs() < 1e-14);
        assert!((exit[1]).abs() < 1e-14);
        assert!((exit[2] - 2.0).abs() < 1e-14);
    }
}
