use performa_linalg::{Matrix, Vector};

use crate::error::require_positive;
use crate::{DistError, DistributionFn, MatrixExp, Moments, Result};

/// The Erlang-`k` distribution: the sum of `k` i.i.d. exponentials with
/// rate `rate` per stage.
///
/// Erlangs sit on the *low-variance* side (`scv = 1/k ≤ 1`) and are used in
/// the test-suite and ablation experiments as the counterpoint to the
/// high-variance repair distributions the paper studies.
///
/// # Example
///
/// ```
/// use performa_dist::{Erlang, Moments};
///
/// let e = Erlang::with_mean(4, 2.0)?; // 4 stages, overall mean 2
/// assert!((e.mean() - 2.0).abs() < 1e-12);
/// assert!((e.scv() - 0.25).abs() < 1e-12);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Erlang {
    stages: u32,
    rate: f64,
}

impl Erlang {
    /// Creates an Erlang distribution with `stages` phases of rate `rate`.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `stages == 0` or `rate` is not
    /// finite positive.
    pub fn new(stages: u32, rate: f64) -> Result<Self> {
        if stages == 0 {
            return Err(DistError::InvalidParameter {
                name: "stages",
                value: 0.0,
                constraint: ">= 1",
            });
        }
        require_positive("rate", rate)?;
        Ok(Erlang { stages, rate })
    }

    /// Creates an Erlang with `stages` phases and the given overall mean.
    ///
    /// # Errors
    ///
    /// Same as [`Erlang::new`].
    pub fn with_mean(stages: u32, mean: f64) -> Result<Self> {
        require_positive("mean", mean)?;
        Erlang::new(stages, stages as f64 / mean)
    }

    /// Number of stages `k`.
    pub fn stages(&self) -> u32 {
        self.stages
    }

    /// Per-stage rate.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Bidiagonal phase-type representation (stage chain).
    pub fn to_matrix_exp(&self) -> MatrixExp {
        let k = self.stages as usize;
        let mut b = Matrix::zeros(k, k);
        for i in 0..k {
            b[(i, i)] = self.rate;
            if i + 1 < k {
                b[(i, i + 1)] = -self.rate;
            }
        }
        MatrixExp::new(Vector::basis(k, 0), b)
            .expect("Erlang chain is always a valid representation")
    }
}

impl Moments for Erlang {
    fn mean(&self) -> f64 {
        self.stages as f64 / self.rate
    }

    fn variance(&self) -> f64 {
        self.stages as f64 / (self.rate * self.rate)
    }

    fn raw_moment(&self, k: u32) -> f64 {
        // E[X^m] = (k)(k+1)…(k+m−1) / λ^m for Erlang-k with stage rate λ.
        let mut m = 1.0;
        for i in 0..k {
            m *= (self.stages + i) as f64 / self.rate;
        }
        m
    }
}

impl DistributionFn for Erlang {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // 1 − Σ_{n<k} e^{−λx}(λx)ⁿ/n!
        let lx = self.rate * x;
        let mut term = (-lx).exp();
        let mut sum = term;
        for n in 1..self.stages {
            term *= lx / n as f64;
            sum += term;
        }
        (1.0 - sum).clamp(0.0, 1.0)
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        let k = self.stages;
        let lx = self.rate * x;
        // λ (λx)^{k−1} e^{−λx} / (k−1)!
        let mut v = self.rate * (-lx).exp();
        for n in 1..k {
            v *= lx / n as f64;
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_stage_is_exponential() {
        let e = Erlang::new(1, 2.0).unwrap();
        assert_eq!(e.mean(), 0.5);
        assert!((e.scv() - 1.0).abs() < 1e-15);
        let exp = crate::Exponential::new(2.0).unwrap();
        for &x in &[0.1, 1.0, 3.0] {
            assert!((e.cdf(x) - exp.cdf(x)).abs() < 1e-14);
            assert!((e.pdf(x) - exp.pdf(x)).abs() < 1e-14);
        }
    }

    #[test]
    fn rejects_invalid() {
        assert!(Erlang::new(0, 1.0).is_err());
        assert!(Erlang::new(2, 0.0).is_err());
        assert!(Erlang::with_mean(2, -1.0).is_err());
    }

    #[test]
    fn moments_match_formulas() {
        let e = Erlang::new(3, 1.5).unwrap();
        assert!((e.mean() - 2.0).abs() < 1e-15);
        assert!((e.variance() - 3.0 / 2.25).abs() < 1e-15);
        // E[X²] = var + mean² = 4/3·... check against raw_moment.
        assert!((e.raw_moment(2) - (e.variance() + 4.0)).abs() < 1e-12);
        // E[X³] = k(k+1)(k+2)/λ³ = 3·4·5/3.375
        assert!((e.raw_moment(3) - 60.0 / 3.375).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let e = Erlang::new(5, 2.0).unwrap();
        let mut prev = 0.0;
        for i in 0..100 {
            let x = i as f64 * 0.1;
            let c = e.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-15);
            prev = c;
        }
        assert!(e.cdf(50.0) > 0.999999);
    }

    #[test]
    fn matrix_exp_agrees_with_closed_form() {
        let e = Erlang::new(4, 3.0).unwrap();
        let me = e.to_matrix_exp();
        assert!((me.mean() - e.mean()).abs() < 1e-12);
        assert!((me.raw_moment(2) - e.raw_moment(2)).abs() < 1e-11);
        for &x in &[0.2, 1.0, 2.0] {
            assert!((me.sf(x) - e.sf(x)).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn pdf_integrates_to_one_numerically() {
        let e = Erlang::new(3, 2.0).unwrap();
        let dx = 1e-3;
        let total: f64 = (0..20_000).map(|i| e.pdf(i as f64 * dx) * dx).sum();
        assert!((total - 1.0).abs() < 1e-3);
    }
}
