use performa_linalg::{Matrix, Vector};

use crate::{DistError, DistributionFn, MatrixExp, Moments, Result};

/// A hyperexponential distribution: a probabilistic mixture of exponentials.
///
/// With entrance probabilities `p_j` and rates `λ_j`, the reliability
/// function is `R(x) = Σ p_j e^{−λ_j x}`. Hyperexponentials always have
/// `scv ≥ 1`; the paper motivates them as repair-time models (different
/// fault severities each with its own exponential repair stage) and uses the
/// 2-phase special case (HYP-2) fitted to three moments in Sect. 3.2.
///
/// # Example
///
/// ```
/// use performa_dist::{HyperExponential, Moments};
///
/// // 90 % fast repairs (mean 1), 10 % slow repairs (mean 91):
/// let h = HyperExponential::new(&[0.9, 0.1], &[1.0, 1.0 / 91.0])?;
/// assert!((h.mean() - 10.0).abs() < 1e-12);
/// assert!(h.scv() > 1.0);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HyperExponential {
    probs: Vec<f64>,
    rates: Vec<f64>,
}

impl HyperExponential {
    /// Creates a hyperexponential from phase probabilities and rates.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if the slices are empty or differ in
    /// length, probabilities are negative / do not sum to 1, or any rate is
    /// not finite positive.
    pub fn new(probs: &[f64], rates: &[f64]) -> Result<Self> {
        if probs.is_empty() || probs.len() != rates.len() {
            return Err(DistError::InvalidParameter {
                name: "probs/rates",
                value: probs.len() as f64,
                constraint: "non-empty slices of equal length",
            });
        }
        for &p in probs {
            if !(p.is_finite() && p >= 0.0) {
                return Err(DistError::InvalidParameter {
                    name: "probs",
                    value: p,
                    constraint: ">= 0 and finite",
                });
            }
        }
        let sum: f64 = probs.iter().sum();
        if (sum - 1.0).abs() > 1e-10 {
            return Err(DistError::InvalidParameter {
                name: "probs",
                value: sum,
                constraint: "summing to 1",
            });
        }
        for &r in rates {
            if !(r.is_finite() && r > 0.0) {
                return Err(DistError::InvalidParameter {
                    name: "rates",
                    value: r,
                    constraint: "finite and > 0",
                });
            }
        }
        Ok(HyperExponential {
            probs: probs.to_vec(),
            rates: rates.to_vec(),
        })
    }

    /// The *balanced-means* 2-phase hyperexponential with a given mean and
    /// squared coefficient of variation (`scv > 1`): each phase contributes
    /// half the mean (`p₁/λ₁ = p₂/λ₂`). A standard parsimonious
    /// high-variance model.
    ///
    /// # Errors
    ///
    /// [`DistError::InvalidParameter`] if `mean <= 0` or `scv <= 1`.
    pub fn balanced(mean: f64, scv: f64) -> Result<Self> {
        crate::error::require_positive("mean", mean)?;
        if !(scv.is_finite() && scv > 1.0) {
            return Err(DistError::InvalidParameter {
                name: "scv",
                value: scv,
                constraint: "> 1 (use Exponential for scv = 1)",
            });
        }
        let x = ((scv - 1.0) / (scv + 1.0)).sqrt();
        let p1 = 0.5 * (1.0 + x);
        let p2 = 1.0 - p1;
        let l1 = 2.0 * p1 / mean;
        let l2 = 2.0 * p2 / mean;
        HyperExponential::new(&[p1, p2], &[l1, l2])
    }

    /// Number of phases.
    pub fn phases(&self) -> usize {
        self.probs.len()
    }

    /// Phase entrance probabilities.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Phase rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Diagonal phase-type representation `⟨p, diag(λ)⟩`.
    pub fn to_matrix_exp(&self) -> MatrixExp {
        MatrixExp::new(
            Vector::from(self.probs.clone()),
            Matrix::diag(&self.rates),
        )
        .expect("validated parameters always yield a valid representation")
    }
}

impl Moments for HyperExponential {
    fn mean(&self) -> f64 {
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(p, l)| p / l)
            .sum()
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.raw_moment(2) - m * m
    }

    fn raw_moment(&self, k: u32) -> f64 {
        let mut factorial = 1.0;
        for i in 2..=k {
            factorial *= i as f64;
        }
        factorial
            * self
                .probs
                .iter()
                .zip(&self.rates)
                .map(|(p, l)| p / l.powi(k as i32))
                .sum::<f64>()
    }
}

impl DistributionFn for HyperExponential {
    fn cdf(&self, x: f64) -> f64 {
        1.0 - self.sf(x)
    }

    fn sf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 1.0;
        }
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(p, l)| p * (-l * x).exp())
            .sum()
    }

    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        self.probs
            .iter()
            .zip(&self.rates)
            .map(|(p, l)| p * l * (-l * x).exp())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(HyperExponential::new(&[], &[]).is_err());
        assert!(HyperExponential::new(&[1.0], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.4], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.5], &[1.0, -2.0]).is_err());
        assert!(HyperExponential::new(&[-0.5, 1.5], &[1.0, 2.0]).is_err());
        assert!(HyperExponential::new(&[0.5, 0.5], &[1.0, 2.0]).is_ok());
    }

    #[test]
    fn single_phase_is_exponential() {
        let h = HyperExponential::new(&[1.0], &[3.0]).unwrap();
        assert!((h.mean() - 1.0 / 3.0).abs() < 1e-15);
        assert!((h.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn moments_formula() {
        let h = HyperExponential::new(&[0.25, 0.75], &[0.5, 5.0]).unwrap();
        let m1 = 0.25 / 0.5 + 0.75 / 5.0;
        let m2 = 2.0 * (0.25 / 0.25 + 0.75 / 25.0);
        assert!((h.mean() - m1).abs() < 1e-15);
        assert!((h.raw_moment(2) - m2).abs() < 1e-15);
        assert!(h.scv() > 1.0);
    }

    #[test]
    fn balanced_matches_target_mean_and_scv() {
        for &(mean, scv) in &[(10.0, 5.0), (1.0, 25.0), (3.0, 1.5)] {
            let h = HyperExponential::balanced(mean, scv).unwrap();
            assert!((h.mean() - mean).abs() < 1e-10, "mean {mean} scv {scv}");
            assert!((h.scv() - scv).abs() < 1e-8, "mean {mean} scv {scv}");
        }
    }

    #[test]
    fn balanced_rejects_low_scv() {
        assert!(HyperExponential::balanced(1.0, 1.0).is_err());
        assert!(HyperExponential::balanced(1.0, 0.5).is_err());
        assert!(HyperExponential::balanced(-1.0, 2.0).is_err());
    }

    #[test]
    fn distribution_functions_are_mixtures() {
        let h = HyperExponential::new(&[0.3, 0.7], &[1.0, 4.0]).unwrap();
        let x = 0.8;
        let sf = 0.3 * (-0.8f64).exp() + 0.7 * (-3.2f64).exp();
        assert!((h.sf(x) - sf).abs() < 1e-15);
        assert!((h.cdf(x) - (1.0 - sf)).abs() < 1e-15);
        let pdf = 0.3 * (-0.8f64).exp() + 0.7 * 4.0 * (-3.2f64).exp();
        assert!((h.pdf(x) - pdf).abs() < 1e-15);
    }

    #[test]
    fn scv_always_at_least_one() {
        // Any mixture of exponentials has scv >= 1.
        let cases = [
            (vec![0.5, 0.5], vec![1.0, 1.0]),
            (vec![0.1, 0.9], vec![0.1, 10.0]),
            (vec![0.2, 0.3, 0.5], vec![1.0, 2.0, 3.0]),
        ];
        for (p, r) in cases {
            let h = HyperExponential::new(&p, &r).unwrap();
            assert!(h.scv() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn matrix_exp_agrees() {
        let h = HyperExponential::new(&[0.2, 0.3, 0.5], &[0.5, 2.0, 8.0]).unwrap();
        let me = h.to_matrix_exp();
        assert_eq!(me.dim(), 3);
        assert!((me.mean() - h.mean()).abs() < 1e-12);
        assert!((me.raw_moment(3) - h.raw_moment(3)).abs() < 1e-9);
        assert!(me.is_phase_type());
    }
}
