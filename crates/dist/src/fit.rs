//! Moment fitting: the 3-moment HYP-2 fit of the paper's Sect. 3.2.
//!
//! Figure 4 of the paper replaces a T-phase TPT repair distribution with a
//! 2-phase hyperexponential whose first **three** moments match, showing
//! that blow-up behaviour survives under the weaker assumption. This module
//! implements that fit in closed form with explicit feasibility checks.

use crate::{DistError, HyperExponential, Moments, Result};

/// Fits a 2-phase hyperexponential to the first three raw moments.
///
/// With `u_k := m_k / k!` the mixture `p·Exp(1/x) + (1−p)·Exp(1/y)` has
/// `u_k = p·xᵏ + (1−p)·yᵏ`, so `x` and `y` are the roots of the quadratic
/// `t² − c₁·t − c₀` with
///
/// ```text
/// c₁ = (u₃ − u₁u₂) / (u₂ − u₁²),   c₀ = u₂ − c₁·u₁ .
/// ```
///
/// # Errors
///
/// [`DistError::InfeasibleMoments`] when the moment set cannot be realized
/// by a HYP-2, i.e. unless
///
/// * all moments are finite positive,
/// * `m₂ ≥ 2·m₁²` (squared coefficient of variation ≥ 1), and
/// * `m₃ ≥ 1.5·m₂²/m₁` (the HYP-2 third-moment lower bound).
///
/// # Example
///
/// ```
/// use performa_dist::{fit::hyp2_from_moments, Moments, TruncatedPowerTail};
///
/// let tpt = TruncatedPowerTail::with_mean(9, 1.4, 0.2, 10.0)?;
/// let h = hyp2_from_moments(tpt.raw_moment(1), tpt.raw_moment(2), tpt.raw_moment(3))?;
/// assert!((h.mean() - tpt.mean()).abs() < 1e-8);
/// assert!((h.raw_moment(3) / tpt.raw_moment(3) - 1.0).abs() < 1e-8);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
pub fn hyp2_from_moments(m1: f64, m2: f64, m3: f64) -> Result<HyperExponential> {
    for (name, m) in [("m1", m1), ("m2", m2), ("m3", m3)] {
        if !(m.is_finite() && m > 0.0) {
            return Err(DistError::InfeasibleMoments {
                message: format!("{name} = {m} must be finite and positive"),
            });
        }
    }
    let scv = m2 / (m1 * m1) - 1.0;
    if scv < 1.0 - 1e-12 {
        return Err(DistError::InfeasibleMoments {
            message: format!(
                "squared coefficient of variation {scv:.6} < 1: a hyperexponential cannot \
                 have sub-exponential variability"
            ),
        });
    }
    let m3_bound = 1.5 * m2 * m2 / m1;
    if m3 < m3_bound * (1.0 - 1e-12) {
        return Err(DistError::InfeasibleMoments {
            message: format!("m3 = {m3:.6e} below the HYP-2 lower bound {m3_bound:.6e}"),
        });
    }

    let u1 = m1;
    let u2 = m2 / 2.0;
    let u3 = m3 / 6.0;

    let denom = u2 - u1 * u1;
    if denom.abs() < 1e-300 {
        // Exactly exponential: return a (degenerate) balanced two-phase
        // representation with equal rates so downstream code that expects
        // two phases keeps working.
        let rate = 1.0 / m1;
        return HyperExponential::new(&[0.5, 0.5], &[rate, rate]);
    }
    let c1 = (u3 - u1 * u2) / denom;
    let c0 = u2 - c1 * u1;
    let disc = c1 * c1 + 4.0 * c0;
    if disc < 0.0 {
        return Err(DistError::InfeasibleMoments {
            message: format!("negative discriminant {disc:.6e} in the mean-time quadratic"),
        });
    }
    let sqrt_disc = disc.sqrt();
    let x = 0.5 * (c1 + sqrt_disc); // slow phase mean
    let y = 0.5 * (c1 - sqrt_disc); // fast phase mean
    if !(x > 0.0 && y > 0.0) {
        return Err(DistError::InfeasibleMoments {
            message: format!("fitted phase means x = {x:.6e}, y = {y:.6e} must be positive"),
        });
    }
    let p_slow = (u1 - y) / (x - y);
    if !(0.0..=1.0).contains(&p_slow) {
        return Err(DistError::InfeasibleMoments {
            message: format!("fitted mixing probability {p_slow:.6e} outside [0, 1]"),
        });
    }
    HyperExponential::new(&[p_slow, 1.0 - p_slow], &[1.0 / x, 1.0 / y])
}

/// Fits a HYP-2 to the first three moments of an arbitrary distribution.
///
/// This is the exact operation used for the paper's Figure 4 (TPT → HYP-2).
///
/// # Example
///
/// ```
/// use performa_dist::{fit, Moments, TruncatedPowerTail};
///
/// let tpt = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?;
/// let h = fit::hyp2_matching(&tpt)?;
/// assert!((h.mean() - tpt.mean()).abs() < 1e-8);
/// assert!((h.variance() / tpt.variance() - 1.0).abs() < 1e-8);
/// # Ok::<(), performa_dist::DistError>(())
/// ```
///
/// # Errors
///
/// See [`hyp2_from_moments`].
pub fn hyp2_matching<D: Moments>(dist: &D) -> Result<HyperExponential> {
    hyp2_from_moments(dist.raw_moment(1), dist.raw_moment(2), dist.raw_moment(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Moments, TruncatedPowerTail};

    #[test]
    fn roundtrip_from_hyp2() {
        let orig = HyperExponential::new(&[0.2, 0.8], &[0.05, 2.0]).unwrap();
        let fitted = hyp2_matching(&orig).unwrap();
        for k in 1..=3 {
            let a = orig.raw_moment(k);
            let b = fitted.raw_moment(k);
            assert!((a / b - 1.0).abs() < 1e-10, "moment {k}: {a} vs {b}");
        }
    }

    #[test]
    fn fits_paper_tpt_settings() {
        // The exact fits behind Figure 4: TPT(T, alpha=1.4, theta=0.2),
        // MTTR = 10.
        for &t in &[5u32, 9, 10] {
            let tpt = TruncatedPowerTail::with_mean(t, 1.4, 0.2, 10.0).unwrap();
            let h = hyp2_matching(&tpt).unwrap();
            for k in 1..=3 {
                let rel = h.raw_moment(k) / tpt.raw_moment(k) - 1.0;
                assert!(rel.abs() < 1e-8, "T={t} moment {k}: rel err {rel}");
            }
            // The fitted slow phase must be much slower than the mean
            // (that's what creates the blow-up behaviour).
            let slow_mean = 1.0 / h.rates()[0].min(h.rates()[1]);
            assert!(slow_mean > 5.0 * tpt.mean(), "T={t}: slow mean {slow_mean}");
        }
    }

    #[test]
    fn rejects_low_variance() {
        // Erlang-2 moments: scv = 0.5 < 1.
        let e = crate::Erlang::new(2, 1.0).unwrap();
        let err = hyp2_matching(&e).unwrap_err();
        assert!(matches!(err, DistError::InfeasibleMoments { .. }));
    }

    #[test]
    fn rejects_third_moment_below_bound() {
        // m1 = 1, m2 = 4 (scv = 3), but m3 far below 1.5·m2²/m1 = 24.
        let err = hyp2_from_moments(1.0, 4.0, 10.0).unwrap_err();
        assert!(matches!(err, DistError::InfeasibleMoments { .. }));
    }

    #[test]
    fn rejects_nonpositive_moments() {
        assert!(hyp2_from_moments(0.0, 1.0, 1.0).is_err());
        assert!(hyp2_from_moments(1.0, -1.0, 1.0).is_err());
        assert!(hyp2_from_moments(1.0, 2.0, f64::INFINITY).is_err());
    }

    #[test]
    fn exponential_moments_yield_valid_fit() {
        // m_k = k! (unit exponential) sits exactly on both boundaries.
        let h = hyp2_from_moments(1.0, 2.0, 6.0).unwrap();
        assert!((h.mean() - 1.0).abs() < 1e-9);
        assert!((h.scv() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn high_variance_fit_is_extreme_mixture() {
        let h = hyp2_from_moments(10.0, 10_000.0, 5.0e7).unwrap();
        // scv = 99: expect one very slow, rarely visited phase.
        let (p_slow, slow_rate) = if h.rates()[0] < h.rates()[1] {
            (h.probs()[0], h.rates()[0])
        } else {
            (h.probs()[1], h.rates()[1])
        };
        assert!(p_slow < 0.2);
        assert!(1.0 / slow_rate > 100.0);
        assert!((h.raw_moment(2) - 10_000.0).abs() / 10_000.0 < 1e-9);
    }
}
