//! Typed, parseable distribution specifications.
//!
//! A [`DistSpec`] is the declarative counterpart of [`Dist`]: a small
//! value type naming a distribution family and its parameters, with a
//! `family:param:...` text form (`FromStr` + `Display` round-trip) shared
//! by the CLI, the experiment binaries and configuration files.
//!
//! The spec keeps the *mean* as an explicit parameter for every family,
//! which is what makes cycle-preserving availability sweeps a pure
//! operation: [`DistSpec::with_mean`] replaces the mean and leaves every
//! shape parameter untouched.
//!
//! ```
//! use performa_dist::{DistSpec, Moments};
//!
//! let spec: DistSpec = "tpt:10:1.4:0.2:10".parse()?;
//! assert_eq!(spec.to_string(), "tpt:10:1.4:0.2:10");
//! let dist = spec.with_mean(2.5).to_dist()?;
//! assert!((dist.mean() - 2.5).abs() < 1e-12);
//! # Ok::<(), performa_dist::DistError>(())
//! ```

use std::fmt;
use std::str::FromStr;

use crate::{
    Dist, DistError, Erlang, Exponential, HyperExponential, Pareto, TruncatedPowerTail, Weibull,
};

/// A declarative distribution specification.
///
/// Text form (one token per parameter, `:`-separated):
///
/// | Spec | Family |
/// |---|---|
/// | `exp:MEAN` | [`Exponential`] |
/// | `erlang:K:MEAN` | [`Erlang`] with `K` stages |
/// | `hyp2:MEAN:SCV` | balanced [`HyperExponential`] |
/// | `tpt:T:ALPHA:THETA:MEAN` | [`TruncatedPowerTail`] |
/// | `pareto:ALPHA:MEAN` | [`Pareto`] (simulation only) |
/// | `weibull:SHAPE:MEAN` | [`Weibull`] (simulation only) |
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum DistSpec {
    /// Exponential with the given mean.
    Exp {
        /// Mean duration.
        mean: f64,
    },
    /// Erlang-k with the given stage count and mean.
    Erlang {
        /// Number of stages `k ≥ 1`.
        stages: u32,
        /// Mean duration.
        mean: f64,
    },
    /// Balanced two-phase hyperexponential matching mean and SCV.
    Hyp2 {
        /// Mean duration.
        mean: f64,
        /// Squared coefficient of variation (`> 1`).
        scv: f64,
    },
    /// Truncated power tail `⟨T, α, θ⟩` normalized to the given mean.
    Tpt {
        /// Truncation level `T`.
        truncation: u32,
        /// Tail exponent `α`.
        alpha: f64,
        /// Geometric stage-probability parameter `θ ∈ (0, 1)`.
        theta: f64,
        /// Mean duration.
        mean: f64,
    },
    /// Pareto power tail with the given exponent and mean.
    Pareto {
        /// Tail exponent `α > 1`.
        alpha: f64,
        /// Mean duration.
        mean: f64,
    },
    /// Weibull with the given shape and mean.
    Weibull {
        /// Shape parameter `k > 0`.
        shape: f64,
        /// Mean duration.
        mean: f64,
    },
}

impl DistSpec {
    /// The mean parameter of the spec.
    pub fn mean(&self) -> f64 {
        match *self {
            DistSpec::Exp { mean }
            | DistSpec::Erlang { mean, .. }
            | DistSpec::Hyp2 { mean, .. }
            | DistSpec::Tpt { mean, .. }
            | DistSpec::Pareto { mean, .. }
            | DistSpec::Weibull { mean, .. } => mean,
        }
    }

    /// The same spec with its mean replaced and every shape parameter
    /// kept — the primitive behind cycle-preserving availability
    /// rescaling. Domain violations (e.g. a non-positive mean) surface
    /// when the spec is materialized with [`DistSpec::to_dist`].
    #[must_use]
    pub fn with_mean(mut self, mean: f64) -> Self {
        match &mut self {
            DistSpec::Exp { mean: m }
            | DistSpec::Erlang { mean: m, .. }
            | DistSpec::Hyp2 { mean: m, .. }
            | DistSpec::Tpt { mean: m, .. }
            | DistSpec::Pareto { mean: m, .. }
            | DistSpec::Weibull { mean: m, .. } => *m = mean,
        }
        self
    }

    /// Materializes the spec into a concrete [`Dist`].
    ///
    /// # Errors
    ///
    /// Propagates the family constructor's [`DistError`] when a
    /// parameter is outside its domain.
    pub fn to_dist(&self) -> Result<Dist, DistError> {
        Ok(match *self {
            DistSpec::Exp { mean } => Exponential::with_mean(mean)?.into(),
            DistSpec::Erlang { stages, mean } => Erlang::with_mean(stages, mean)?.into(),
            DistSpec::Hyp2 { mean, scv } => HyperExponential::balanced(mean, scv)?.into(),
            DistSpec::Tpt {
                truncation,
                alpha,
                theta,
                mean,
            } => TruncatedPowerTail::with_mean(truncation, alpha, theta, mean)?.into(),
            DistSpec::Pareto { alpha, mean } => Pareto::with_mean(alpha, mean)?.into(),
            DistSpec::Weibull { shape, mean } => Weibull::with_mean(shape, mean)?.into(),
        })
    }
}

impl fmt::Display for DistSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DistSpec::Exp { mean } => write!(f, "exp:{mean}"),
            DistSpec::Erlang { stages, mean } => write!(f, "erlang:{stages}:{mean}"),
            DistSpec::Hyp2 { mean, scv } => write!(f, "hyp2:{mean}:{scv}"),
            DistSpec::Tpt {
                truncation,
                alpha,
                theta,
                mean,
            } => write!(f, "tpt:{truncation}:{alpha}:{theta}:{mean}"),
            DistSpec::Pareto { alpha, mean } => write!(f, "pareto:{alpha}:{mean}"),
            DistSpec::Weibull { shape, mean } => write!(f, "weibull:{shape}:{mean}"),
        }
    }
}

fn bad_spec(spec: &str, message: impl Into<String>) -> DistError {
    DistError::InvalidSpec {
        spec: spec.to_string(),
        message: message.into(),
    }
}

fn num(spec: &str, token: &str) -> Result<f64, DistError> {
    token
        .parse()
        .map_err(|_| bad_spec(spec, format!("bad number `{token}`")))
}

fn int(spec: &str, token: &str, what: &str) -> Result<u32, DistError> {
    token
        .parse()
        .map_err(|_| bad_spec(spec, format!("bad {what} `{token}`")))
}

impl FromStr for DistSpec {
    type Err = DistError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.split(':').collect();
        match parts.as_slice() {
            ["exp", m] => Ok(DistSpec::Exp { mean: num(s, m)? }),
            ["erlang", k, m] => Ok(DistSpec::Erlang {
                stages: int(s, k, "stage count")?,
                mean: num(s, m)?,
            }),
            ["hyp2", m, scv] => Ok(DistSpec::Hyp2 {
                mean: num(s, m)?,
                scv: num(s, scv)?,
            }),
            ["tpt", t, a, th, m] => Ok(DistSpec::Tpt {
                truncation: int(s, t, "truncation level")?,
                alpha: num(s, a)?,
                theta: num(s, th)?,
                mean: num(s, m)?,
            }),
            ["pareto", a, m] => Ok(DistSpec::Pareto {
                alpha: num(s, a)?,
                mean: num(s, m)?,
            }),
            ["weibull", k, m] => Ok(DistSpec::Weibull {
                shape: num(s, k)?,
                mean: num(s, m)?,
            }),
            _ => Err(bad_spec(s, "unknown distribution family or arity")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Moments;

    #[test]
    fn round_trips_canonical_strings() {
        for s in [
            "exp:90",
            "erlang:3:10",
            "hyp2:10:20",
            "tpt:10:1.4:0.2:10",
            "pareto:1.4:10",
            "weibull:0.5:10",
        ] {
            let spec: DistSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "display round-trip for `{s}`");
            let again: DistSpec = spec.to_string().parse().unwrap();
            assert_eq!(again, spec, "parse round-trip for `{s}`");
        }
    }

    #[test]
    fn to_dist_matches_direct_constructors() {
        let spec: DistSpec = "tpt:10:1.4:0.2:10".parse().unwrap();
        let via_spec = spec.to_dist().unwrap();
        let direct: Dist = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)
            .unwrap()
            .into();
        assert_eq!(via_spec, direct);
    }

    #[test]
    fn with_mean_replaces_only_the_mean() {
        let spec: DistSpec = "tpt:10:1.4:0.2:10".parse().unwrap();
        let rescaled = spec.with_mean(2.5);
        assert_eq!(rescaled.to_string(), "tpt:10:1.4:0.2:2.5");
        let d = rescaled.to_dist().unwrap();
        assert!((d.mean() - 2.5).abs() < 1e-12);
        assert!((d.scv() - spec.to_dist().unwrap().scv()).abs() < 1e-9);
    }

    #[test]
    fn with_mean_matches_string_rescale() {
        // The historical CLI path formatted the new mean into the spec
        // string and re-parsed; the typed path must produce bit-identical
        // parameters (f64 Display is shortest-roundtrip).
        let new_mean = 0.3125 * 100.0;
        let via_string: DistSpec = format!("exp:{new_mean}").parse().unwrap();
        let via_typed = "exp:90".parse::<DistSpec>().unwrap().with_mean(new_mean);
        assert_eq!(via_string, via_typed);
    }

    #[test]
    fn rejects_malformed_specs() {
        for s in ["", "exp", "exp:abc", "tpt:1.5:1.4:0.2:10", "gauss:1:2"] {
            let err = s.parse::<DistSpec>().unwrap_err();
            assert!(
                matches!(err, DistError::InvalidSpec { .. }),
                "`{s}` should fail with InvalidSpec, got {err:?}"
            );
        }
    }

    #[test]
    fn mean_accessor() {
        let spec: DistSpec = "hyp2:10:20".parse().unwrap();
        assert_eq!(spec.mean(), 10.0);
        assert_eq!(spec.with_mean(4.0).mean(), 4.0);
    }
}
