//! Integration tests pinning the paper's headline quantitative claims
//! (the evaluation "shape criteria" from DESIGN.md).

use performa::core::{blowup, blowup::BlowupRegion, ClusterModel};
use performa::dist::{Exponential, TruncatedPowerTail};

fn tpt_model(t: u32, rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(t, 1.4, 0.2, 10.0).unwrap())
        .utilization(rho)
        .build()
        .unwrap()
}

#[test]
fn figure1_blowup_thresholds_at_21_7_and_60_9_percent() {
    let m = tpt_model(10, 0.5);
    let t = blowup::utilization_thresholds(&m);
    assert!((t[0] - 0.217).abs() < 1e-3, "rho_2 = {}", t[0]);
    assert!((t[1] - 0.609).abs() < 1e-3, "rho_1 = {}", t[1]);
}

#[test]
fn figure1_three_regions_for_large_t() {
    // Region A (rho < 0.217): insensitive to the repair shape.
    let small_exp = tpt_model(1, 0.15).solve().unwrap().mean_queue_length();
    let small_tpt = tpt_model(10, 0.15).solve().unwrap().mean_queue_length();
    assert!(
        (small_tpt / small_exp - 1.0).abs() < 0.05,
        "insensitive region: {small_exp} vs {small_tpt}"
    );

    // Region B (0.217 < rho < 0.609): noticeably worse, not catastrophic.
    let mid_exp = tpt_model(1, 0.45).solve().unwrap().mean_queue_length();
    let mid_tpt = tpt_model(10, 0.45).solve().unwrap().mean_queue_length();
    let mid_ratio = mid_tpt / mid_exp;
    assert!(
        mid_ratio > 1.2 && mid_ratio < 20.0,
        "intermediate region ratio {mid_ratio}"
    );

    // Region C (rho > 0.609): huge blow-up.
    let big_exp = tpt_model(1, 0.75).solve().unwrap().mean_queue_length();
    let big_tpt = tpt_model(10, 0.75).solve().unwrap().mean_queue_length();
    assert!(
        big_tpt / big_exp > 30.0,
        "blow-up region ratio {}",
        big_tpt / big_exp
    );
}

#[test]
fn figure1_mean_grows_with_truncation_level() {
    let mut prev = 0.0;
    for t in [1u32, 5, 9, 10] {
        let m = tpt_model(t, 0.7).solve().unwrap().mean_queue_length();
        assert!(m > prev, "T={t}: {m} <= {prev}");
        prev = m;
    }
}

#[test]
fn figure2_pmf_shapes() {
    // rho = 0.1: geometric decay — the pmf ratio stabilizes quickly and
    // stays well below 1.
    let sol = tpt_model(9, 0.1).solve().unwrap();
    let pmf = sol.queue_length_pmf_range(200);
    let r1 = pmf[30] / pmf[20];
    let r2 = pmf[60] / pmf[50];
    assert!(r1 < 0.9 && (r1 / r2 - 1.0).abs() < 0.3, "r1={r1} r2={r2}");

    // rho = 0.7 (region 1): truncated power law with exponent near
    // beta_1 = 1.4 on the mid-range.
    let sol = tpt_model(9, 0.7).solve().unwrap();
    let pmf = sol.queue_length_pmf_range(2_001);
    let slope = (pmf[800].ln() - pmf[80].ln()) / ((800.0f64).ln() - (80.0f64).ln());
    assert!(
        (-slope - 1.4).abs() < 0.35,
        "rho=0.7 slope {slope}, expected ~ -1.4"
    );

    // rho = 0.3 (region 2): steeper power law (beta_2 = 1.8).
    let sol = tpt_model(9, 0.3).solve().unwrap();
    let pmf = sol.queue_length_pmf_range(2_001);
    let slope2 = (pmf[400].ln() - pmf[40].ln()) / ((400.0f64).ln() - (40.0f64).ln());
    assert!(
        -slope2 > -slope - 0.15,
        "rho=0.3 slope {slope2} should be steeper than rho=0.7 slope {slope}"
    );
}

#[test]
fn figure3_tail_probabilities_jump_at_blowup() {
    // Pr(Q >= 500) for T = 10: negligible below the first threshold,
    // non-negligible above the second.
    let low = tpt_model(10, 0.15).solve().unwrap().at_least_probability(500);
    let mid = tpt_model(10, 0.45).solve().unwrap().at_least_probability(500);
    let high = tpt_model(10, 0.75).solve().unwrap().at_least_probability(500);
    assert!(low < 1e-30, "low {low}");
    assert!(mid > low * 1e10, "mid {mid} vs low {low}");
    assert!(high > 1e-3, "high {high}");

    // Exponential repair only has visible tails near saturation.
    let exp_high = tpt_model(1, 0.75).solve().unwrap().at_least_probability(500);
    assert!(exp_high < 1e-10, "exp {exp_high}");
}

#[test]
fn figure4_hyp2_matches_tpt_in_blowup_region() {
    use performa::dist::fit;
    let tpt = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0).unwrap();
    let hyp = fit::hyp2_matching(&tpt).unwrap();
    let m_hyp = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(hyp)
        .utilization(0.75)
        .build()
        .unwrap()
        .solve()
        .unwrap()
        .normalized_mean_queue_length();
    let m_tpt = tpt_model(10, 0.75).solve().unwrap().normalized_mean_queue_length();
    // Paper: "in the worst blow-up region ... the actual values closely
    // match".
    assert!(
        (m_hyp / m_tpt - 1.0).abs() < 0.35,
        "HYP-2 {m_hyp} vs TPT {m_tpt}"
    );
    assert!(m_hyp > 20.0);
}

#[test]
fn figure5_stability_bound_and_monotonicity() {
    let probe = tpt_model(10, 0.5).with_arrival_rate(1.8).unwrap();
    let bound = blowup::stability_availability_bound(&probe);
    assert!((bound - 0.3125).abs() < 1e-10);

    // Normalized mean decreases as availability rises (fixed cycle 100).
    let at = |a: f64| {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(a * 100.0).unwrap())
            .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, (1.0 - a) * 100.0).unwrap())
            .arrival_rate(1.8)
            .build()
            .unwrap()
            .solve()
            .unwrap()
            .normalized_mean_queue_length()
    };
    let (a40, a60, a90) = (at(0.40), at(0.60), at(0.90));
    assert!(a40 > a60 && a60 > a90, "{a40} {a60} {a90}");
    // Near the asymptote the values explode.
    assert!(at(0.33) > 10.0 * a90);
}

#[test]
fn figure6_five_blowup_points_for_n5() {
    let m5 = |rho: f64| {
        ClusterModel::builder()
            .servers(5)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0).unwrap())
            .down(
                performa::dist::fit::hyp2_matching(
                    &TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0).unwrap(),
                )
                .unwrap(),
            )
            .utilization(rho)
            .build()
            .unwrap()
    };
    let thresholds = blowup::utilization_thresholds(&m5(0.5));
    assert_eq!(thresholds.len(), 5);

    // The tail probability takes a visible jump across each threshold.
    let mut prev_tail = 0.0_f64;
    for (i, &thr) in thresholds.iter().enumerate() {
        let below = m5(thr - 0.04).solve().unwrap().at_least_probability(500);
        let above = m5(thr + 0.04).solve().unwrap().at_least_probability(500);
        assert!(
            above > below * 100.0 || below < 1e-250,
            "threshold {i} at {thr}: below {below}, above {above}"
        );
        assert!(above >= prev_tail);
        prev_tail = above;
    }
}

#[test]
fn blowup_region_classification_follows_lambda() {
    let m = |lambda: f64| tpt_model(5, 0.5).with_arrival_rate(lambda).unwrap();
    assert_eq!(blowup::region(&m(0.5)), BlowupRegion::Insensitive);
    assert_eq!(blowup::region(&m(1.5)), BlowupRegion::Region(2));
    assert_eq!(blowup::region(&m(3.0)), BlowupRegion::Region(1));
}

#[test]
fn mean_ttf_ttr_do_not_move_blowup_points() {
    // Paper: "the mean TTF and mean TTR do not have any impact on the
    // location of the blow-up points" (only A matters).
    let scale = |f: f64| {
        ClusterModel::builder()
            .servers(2)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0 * f).unwrap())
            .down(TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0 * f).unwrap())
            .utilization(0.5)
            .build()
            .unwrap()
    };
    let t1 = blowup::utilization_thresholds(&scale(1.0));
    let t2 = blowup::utilization_thresholds(&scale(10.0));
    for (a, b) in t1.iter().zip(&t2) {
        assert!((a - b).abs() < 1e-12);
    }
}
