//! Deeper cross-validation between independent computation routes:
//! analytic moments vs simulated histograms, IDC overdispersion, and
//! sensitivity-vs-sweep consistency.

use performa::core::{sensitivity, ClusterModel};
use performa::dist::{Exponential, TruncatedPowerTail};
use performa::sim::{ExactModelConfig, ExactModelSim, StopCriterion};

fn model(rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(3, 1.4, 0.5, 10.0).unwrap())
        .utilization(rho)
        .build()
        .unwrap()
}

#[test]
fn analytic_variance_matches_simulated_histogram() {
    let m = model(0.5);
    let sol = m.solve().unwrap();
    let sim = ExactModelSim::new(ExactModelConfig {
        servers: 2,
        nu_p: 2.0,
        delta: 0.2,
        up: m.up().clone(),
        down: m.down().clone(),
        lambda: m.arrival_rate(),
        stop: StopCriterion::Cycles(60_000),
        warmup_time: 2_000.0,
    })
    .unwrap();

    let mut mean_acc = 0.0;
    let mut second_acc = 0.0;
    let runs = 4;
    for seed in 0..runs {
        let r = sim.run(seed);
        let d = &r.queue_length_distribution;
        mean_acc += d.iter().enumerate().map(|(q, p)| q as f64 * p).sum::<f64>();
        second_acc += d
            .iter()
            .enumerate()
            .map(|(q, p)| (q * q) as f64 * p)
            .sum::<f64>();
    }
    let sim_mean = mean_acc / runs as f64;
    let sim_second = second_acc / runs as f64;
    let sim_var = sim_second - sim_mean * sim_mean;

    assert!(
        (sim_mean / sol.mean_queue_length() - 1.0).abs() < 0.1,
        "mean: sim {sim_mean} vs analytic {}",
        sol.mean_queue_length()
    );
    assert!(
        (sim_var / sol.queue_length_variance() - 1.0).abs() < 0.3,
        "variance: sim {sim_var} vs analytic {}",
        sol.queue_length_variance()
    );
}

#[test]
fn service_process_is_overdispersed() {
    // Any genuinely modulated MMPP is a Cox process: IDC(∞) ≥ 1, and the
    // heavy-repair cluster is far above 1.
    let light = model(0.5); // T = 3 tame tail
    let idc = light.service_process().unwrap().asymptotic_idc().unwrap();
    assert!(idc >= 1.0, "IDC {idc}");

    let heavy = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.5)
        .build()
        .unwrap();
    let idc_heavy = heavy.service_process().unwrap().asymptotic_idc().unwrap();
    assert!(idc_heavy > 5.0 * idc, "heavy {idc_heavy} vs light {idc}");
}

#[test]
fn sensitivity_matches_finite_sweep() {
    // d/dλ from the sensitivity module must agree with a coarse manual
    // secant through two full solves.
    let m = model(0.5);
    let s = sensitivity::sensitivities(&m).unwrap();
    let l = m.arrival_rate();
    let h = 0.01 * l;
    let up = m
        .with_arrival_rate(l + h)
        .unwrap()
        .solve()
        .unwrap()
        .mean_queue_length();
    let down = m
        .with_arrival_rate(l - h)
        .unwrap()
        .solve()
        .unwrap()
        .mean_queue_length();
    let secant = (up - down) / (2.0 * h);
    assert!(
        (s.wrt_arrival_rate / secant - 1.0).abs() < 0.02,
        "module {} vs secant {secant}",
        s.wrt_arrival_rate
    );
}

#[test]
fn delay_metric_consistent_with_tail_curve() {
    // Pr(S > d) = Pr(Q > floor(d·ν̄)) exactly, by definition of the
    // approximation; verify the plumbing end to end.
    let sol = model(0.6).solve().unwrap();
    let nu_bar = sol.model().capacity();
    for d in [0.5, 2.0, 10.0] {
        let k = (d * nu_bar).floor() as usize;
        assert!(
            (sol.delay_violation_probability(d) - sol.tail_probability(k)).abs() < 1e-15,
            "d={d}"
        );
    }
}

#[test]
fn decay_rate_predicts_deep_tail_ratio() {
    let sol = model(0.7).solve().unwrap();
    let eta = sol.decay_rate().unwrap();
    let t1 = sol.tail_probability(800);
    let t2 = sol.tail_probability(801);
    assert!(
        (t2 / t1 - eta).abs() < 1e-4,
        "tail ratio {} vs eta {eta}",
        t2 / t1
    );
}
