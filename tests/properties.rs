//! Property-based tests (proptest) on the workspace's core invariants:
//! linear algebra, distributions, moment fitting, Markov aggregation and
//! the QBD solver.

use proptest::prelude::*;

use performa::dist::{
    fit, DistributionFn, Erlang, Exponential, HyperExponential, Moments, TruncatedPowerTail,
};
use performa::linalg::{lu::Lu, Matrix, Vector};
use performa::markov::{aggregate, transient::Uniformized, ServerModel};
use performa::qbd::{FiniteQbd, Qbd};

// ---------- linear algebra ----------

/// Diagonally dominant random matrices are safely non-singular.
fn dominant_matrix(n: usize, seed: &[f64]) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        let v = seed[(i * n + j) % seed.len()] - 0.5;
        if i == j {
            v + n as f64 + 1.0
        } else {
            v
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solve_roundtrip(
        n in 1usize..8,
        seed in prop::collection::vec(0.0f64..1.0, 64),
        xs in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        let a = dominant_matrix(n, &seed);
        let x_true = Vector::from(xs[..n].to_vec());
        let b = a.mul_vec(&x_true);
        let x = Lu::factor(&a).unwrap().solve_vec(&b).unwrap();
        prop_assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn lu_left_solve_roundtrip(
        n in 1usize..8,
        seed in prop::collection::vec(0.0f64..1.0, 64),
        xs in prop::collection::vec(-10.0f64..10.0, 8),
    ) {
        let a = dominant_matrix(n, &seed);
        let x_true = Vector::from(xs[..n].to_vec());
        let b = a.vec_mul(&x_true);
        let x = Lu::factor(&a).unwrap().solve_left_vec(&b).unwrap();
        prop_assert!(x.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn matrix_transpose_product_identity(
        n in 1usize..6,
        m in 1usize..6,
        seed in prop::collection::vec(-1.0f64..1.0, 36),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let a = Matrix::from_fn(n, m, |i, j| seed[(i * m + j) % seed.len()]);
        let b = Matrix::from_fn(m, n, |i, j| seed[(i * n + j + 7) % seed.len()]);
        let lhs = (&a * &b).transpose();
        let rhs = b.transpose() * a.transpose();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    // ---------- distributions ----------

    #[test]
    fn exponential_cdf_properties(rate in 0.01f64..100.0, x in 0.0f64..50.0) {
        let e = Exponential::new(rate).unwrap();
        prop_assert!((e.cdf(x) + e.sf(x) - 1.0).abs() < 1e-12);
        prop_assert!(e.cdf(x) >= 0.0 && e.cdf(x) <= 1.0);
        // Memorylessness: sf(x+y) = sf(x)·sf(y).
        prop_assert!((e.sf(x + 1.0) - e.sf(x) * e.sf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn hyperexp_scv_at_least_one(
        p in 0.01f64..0.99,
        r1 in 0.01f64..10.0,
        r2 in 0.01f64..10.0,
    ) {
        let h = HyperExponential::new(&[p, 1.0 - p], &[r1, r2]).unwrap();
        prop_assert!(h.scv() >= 1.0 - 1e-9);
        // Mean is the probability mix of phase means.
        let expect = p / r1 + (1.0 - p) / r2;
        prop_assert!((h.mean() - expect).abs() < 1e-12);
    }

    #[test]
    fn erlang_moments_consistent(k in 1u32..12, rate in 0.1f64..10.0) {
        let e = Erlang::new(k, rate).unwrap();
        prop_assert!((e.scv() - 1.0 / k as f64).abs() < 1e-10);
        let me = e.to_matrix_exp();
        prop_assert!((me.mean() - e.mean()).abs() < 1e-8 * e.mean());
        prop_assert!((me.raw_moment(2) - e.raw_moment(2)).abs() < 1e-7 * e.raw_moment(2));
    }

    #[test]
    fn tpt_mean_normalization_holds(
        t in 1u32..15,
        alpha in 1.05f64..3.0,
        theta in 0.05f64..0.95,
        mean in 0.1f64..100.0,
    ) {
        let d = TruncatedPowerTail::with_mean(t, alpha, theta, mean).unwrap();
        prop_assert!((d.mean() - mean).abs() < 1e-7 * mean);
        // Reliability function is monotone decreasing.
        let probes = [0.0, mean * 0.5, mean, mean * 5.0, mean * 50.0];
        for w in probes.windows(2) {
            prop_assert!(d.sf(w[1]) <= d.sf(w[0]) + 1e-12);
        }
    }

    #[test]
    fn hyp2_fit_reproduces_feasible_moments(
        m1 in 0.1f64..10.0,
        scv in 1.05f64..50.0,
        third_factor in 1.6f64..10.0,
    ) {
        let m2 = (scv + 1.0) * m1 * m1;
        // m3 must exceed 1.5·m2²/m1; scan a factor above the bound.
        let m3 = third_factor * m2 * m2 / m1;
        let h = fit::hyp2_from_moments(m1, m2, m3).unwrap();
        prop_assert!((h.raw_moment(1) / m1 - 1.0).abs() < 1e-7);
        prop_assert!((h.raw_moment(2) / m2 - 1.0).abs() < 1e-7);
        prop_assert!((h.raw_moment(3) / m3 - 1.0).abs() < 1e-6);
    }

    // ---------- Markov aggregation ----------

    #[test]
    fn lumped_aggregate_preserves_mean_rate(
        n in 1usize..5,
        up_mean in 10.0f64..200.0,
        down_mean in 1.0f64..50.0,
        nu_p in 0.5f64..4.0,
        delta in 0.0f64..1.0,
    ) {
        let up = Exponential::with_mean(up_mean).unwrap().to_matrix_exp();
        let down = Exponential::with_mean(down_mean).unwrap().to_matrix_exp();
        let s = ServerModel::new(up, down, nu_p, delta).unwrap();
        let agg = aggregate::lumped(&s, n).unwrap();
        let expect = n as f64 * s.mean_service_rate();
        prop_assert!((agg.mean_rate().unwrap() - expect).abs() < 1e-8 * expect.max(1.0));
    }

    #[test]
    fn kronecker_and_lumped_agree_on_rate_law(
        up_mean in 20.0f64..200.0,
        down_mean in 2.0f64..40.0,
        delta in 0.0f64..0.9,
    ) {
        let up = Exponential::with_mean(up_mean).unwrap().to_matrix_exp();
        let down = HyperExponential::balanced(down_mean, 5.0)
            .unwrap()
            .to_matrix_exp();
        let s = ServerModel::new(up, down, 2.0, delta).unwrap();
        let full = aggregate::kronecker(&s, 2).unwrap();
        let lump = aggregate::lumped(&s, 2).unwrap();
        prop_assert!(
            (full.mean_rate().unwrap() - lump.mean_rate().unwrap()).abs() < 1e-8
        );
    }

    // ---------- QBD solver ----------

    #[test]
    fn qbd_solution_is_a_probability_law(
        lambda_frac in 0.05f64..0.95,
        fail_rate in 0.001f64..0.5,
        repair_rate in 0.01f64..2.0,
        nu in 0.5f64..4.0,
        delta in 0.0f64..0.9,
    ) {
        // Random 2-phase MMPP service (one UP, one DOWN phase).
        let q = Matrix::from_rows(&[
            &[-fail_rate, fail_rate],
            &[repair_rate, -repair_rate],
        ]);
        let rates = Vector::from(vec![nu, delta * nu]);
        let avail = repair_rate / (fail_rate + repair_rate);
        let mean_rate = avail * nu + (1.0 - avail) * delta * nu;
        let lambda = lambda_frac * mean_rate;
        prop_assume!(lambda > 1e-6);

        let qbd = Qbd::m_mmpp1(lambda, &q, &rates).unwrap();
        let sol = qbd.solve().unwrap();

        // pmf is non-negative and sums (with tail) to 1.
        let pmf = sol.pmf(200);
        for &p in &pmf {
            prop_assert!(p >= -1e-12);
        }
        let total: f64 = pmf.iter().sum::<f64>() + sol.tail_probability(199);
        prop_assert!((total - 1.0).abs() < 1e-8);

        // Tails decrease monotonically.
        let tails = sol.tail_probabilities(50);
        for w in tails.windows(2) {
            prop_assert!(w[1] <= w[0] + 1e-12);
        }

        // Mean equals the tail sum (computed independently).
        let tail_sum: f64 = sol.tail_probabilities(100_000).iter().sum();
        prop_assert!((sol.mean_queue_length() - tail_sum).abs()
            < 1e-6 * sol.mean_queue_length().max(1.0));

        // Little's law-ish sanity: utilization = 1 - P(empty phase mass
        // weighted) ... at least P(empty) in (0,1).
        let p0 = sol.level_probability(0);
        prop_assert!(p0 > 0.0 && p0 < 1.0);
    }


    // ---------- finite buffers ----------

    #[test]
    fn finite_mm1k_matches_closed_form_for_random_parameters(
        lambda in 0.05f64..3.0,
        mu in 0.05f64..3.0,
        k in 1usize..40,
    ) {
        let s = |v: f64| Matrix::from_rows(&[&[v]]);
        let q = FiniteQbd::new(
            s(lambda),
            s(-lambda - mu),
            s(mu),
            s(-lambda),
            k,
        ).unwrap();
        let sol = q.solve().unwrap();
        let rho = lambda / mu;
        // Closed form handles rho == 1 separately; skip the razor edge.
        prop_assume!((rho - 1.0).abs() > 1e-6);
        let z: f64 = (0..=k).map(|n| rho.powi(n as i32)).sum();
        for n in 0..=k {
            let expect = rho.powi(n as i32) / z;
            prop_assert!(
                (sol.level_probability(n) - expect).abs() < 1e-9,
                "n={} got={} want={}", n, sol.level_probability(n), expect
            );
        }
    }

    #[test]
    fn finite_buffer_mean_below_capacity(
        lambda in 0.1f64..4.0,
        k in 1usize..60,
    ) {
        let s = |v: f64| Matrix::from_rows(&[&[v]]);
        let q = FiniteQbd::new(s(lambda), s(-lambda - 1.0), s(1.0), s(-lambda), k).unwrap();
        let sol = q.solve().unwrap();
        let mean = sol.mean_queue_length();
        prop_assert!(mean >= 0.0 && mean <= k as f64 + 1e-12);
        let block = sol.blocking_probability();
        prop_assert!((0.0..=1.0).contains(&block));
    }

    // ---------- transient analysis ----------

    #[test]
    fn transient_distribution_is_stochastic_and_converges(
        a in 0.01f64..2.0,
        b in 0.01f64..2.0,
        t in 0.01f64..100.0,
    ) {
        let q = Matrix::from_rows(&[&[-a, a], &[b, -b]]);
        let u = Uniformized::new(&q).unwrap();
        let p0 = Vector::from(vec![1.0, 0.0]);
        let p = u.distribution(&p0, t);
        prop_assert!((p.sum() - 1.0).abs() < 1e-9);
        prop_assert!(p.iter().all(|&x| x >= -1e-12));
        // Convergent tail: at t = 1e4 / min-rate we are at stationarity.
        let horizon = 1e4 / a.min(b);
        let far = u.distribution(&p0, horizon.min(1e6));
        let pi = performa::markov::ctmc::steady_state(&q).unwrap();
        prop_assert!(far.max_abs_diff(&pi) < 1e-6);
    }

    // ---------- blow-up algebra ----------

    #[test]
    fn blowup_thresholds_partition_unit_interval(
        n in 1usize..8,
        delta in 0.0f64..0.99,
        a_num in 1u32..99,
    ) {
        use performa::core::{blowup, ClusterModel};
        let a = a_num as f64 / 100.0;
        let up_mean = 100.0 * a;
        let down_mean = 100.0 * (1.0 - a);
        let m = ClusterModel::builder()
            .servers(n)
            .peak_rate(2.0)
            .degradation(delta)
            .up(Exponential::with_mean(up_mean).unwrap())
            .down(Exponential::with_mean(down_mean).unwrap())
            .utilization(0.5)
            .build()
            .unwrap();
        let t = blowup::utilization_thresholds(&m);
        prop_assert_eq!(t.len(), n);
        // Strictly increasing, inside (0, 1].
        for w in t.windows(2) {
            prop_assert!(w[0] < w[1] + 1e-12);
        }
        prop_assert!(t[0] >= 0.0 && *t.last().unwrap() < 1.0 + 1e-12);
        // nu_0 recovers the capacity.
        prop_assert!((blowup::degraded_rate(&m, 0) - m.capacity()).abs() < 1e-9);
    }

    #[test]
    fn qbd_rejects_oversaturated_load(
        fail_rate in 0.001f64..0.5,
        repair_rate in 0.01f64..2.0,
        excess in 1.01f64..5.0,
    ) {
        let q = Matrix::from_rows(&[
            &[-fail_rate, fail_rate],
            &[repair_rate, -repair_rate],
        ]);
        let rates = Vector::from(vec![2.0, 0.0]);
        let avail = repair_rate / (fail_rate + repair_rate);
        let lambda = excess * 2.0 * avail;
        let qbd = Qbd::m_mmpp1(lambda, &q, &rates).unwrap();
        prop_assert!(qbd.solve().is_err());
    }
}
