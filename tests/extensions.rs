//! Cross-crate integration tests for the Sect. 2.4 extensions and the
//! transient performability layer.

use performa::core::{
    ClusterModel, CrashDiscardCluster, FiniteBufferCluster, LoadDependentCluster,
    MeArrivalCluster, TransientAnalysis,
};
use performa::dist::{Erlang, Exponential, TruncatedPowerTail};

fn base(delta: f64, rho: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(delta)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(4, 1.4, 0.5, 10.0).unwrap())
        .utilization(rho)
        .build()
        .unwrap()
}

#[test]
fn all_model_variants_agree_on_light_traffic_limit() {
    // At rho -> 0 every variant collapses to "almost no queue".
    let m = base(0.2, 0.02);
    let plain = m.solve().unwrap().mean_queue_length();
    let fb = FiniteBufferCluster::new(m.clone(), 500)
        .unwrap()
        .solve()
        .unwrap()
        .mean_queue_length();
    let me = MeArrivalCluster::new(
        m.clone(),
        Exponential::new(m.arrival_rate()).unwrap().to_matrix_exp(),
    )
    .unwrap()
    .solve()
    .unwrap()
    .mean_queue_length();
    for (name, v) in [("finite", fb), ("me-arrivals", me)] {
        assert!(
            (v - plain).abs() < 0.05 * plain.max(0.02),
            "{name}: {v} vs plain {plain}"
        );
    }
    // The load-dependent variant differs here by design — and this is the
    // regime where its *relative* correction peaks (a lone task is served
    // by one server, not by the pooled rate): the ratio approaches
    // ν̄/ν_single ≈ 2 while the absolute gap stays tiny.
    let ld = LoadDependentCluster::new(m)
        .solve()
        .unwrap()
        .mean_queue_length();
    assert!(ld > plain, "load-dep {ld} must exceed load-indep {plain}");
    assert!((ld - plain) < 0.02, "absolute gap stays small: {ld} vs {plain}");
    assert!(ld / plain < 2.1, "ratio bounded by the service pooling factor");
}

#[test]
fn finite_buffer_converges_to_infinite_as_capacity_grows() {
    let m = base(0.2, 0.5);
    let infinite = m.solve().unwrap().mean_queue_length();
    let mut prev_err = f64::INFINITY;
    for k in [20usize, 100, 800] {
        let finite = FiniteBufferCluster::new(m.clone(), k)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length();
        let err = (finite - infinite).abs();
        assert!(err <= prev_err + 1e-12, "K={k}: error grew ({err})");
        prev_err = err;
    }
    assert!(prev_err < 1e-3 * infinite);
}

#[test]
fn finite_buffer_loss_ordering_in_blowup_region() {
    // Heavy repair tails push mass deep into the buffer: loss at fixed K
    // must exceed the exponential-repair loss by orders of magnitude.
    let heavy = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(9, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.7)
        .build()
        .unwrap();
    let light = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(Exponential::with_mean(10.0).unwrap())
        .utilization(0.7)
        .build()
        .unwrap();
    let loss = |m: &ClusterModel| {
        FiniteBufferCluster::new(m.clone(), 150)
            .unwrap()
            .solve()
            .unwrap()
            .loss_probability()
    };
    assert!(loss(&heavy) > 100.0 * loss(&light));
}

#[test]
fn me_arrival_cluster_respects_arrival_scv_ordering() {
    let m = base(0.2, 0.5);
    let lambda = m.arrival_rate();
    let mean = 1.0 / lambda;
    let solve_with = |me: performa::dist::MatrixExp| {
        MeArrivalCluster::new(m.clone(), me)
            .unwrap()
            .solve()
            .unwrap()
            .mean_queue_length()
    };
    let erlang8 = solve_with(Erlang::with_mean(8, mean).unwrap().to_matrix_exp());
    let erlang2 = solve_with(Erlang::with_mean(2, mean).unwrap().to_matrix_exp());
    let poisson = solve_with(Exponential::with_mean(mean).unwrap().to_matrix_exp());
    assert!(erlang8 < erlang2, "{erlang8} vs {erlang2}");
    assert!(erlang2 < poisson, "{erlang2} vs {poisson}");
}

#[test]
fn crash_discard_sits_below_resume_and_converges_at_light_load() {
    let light = base(0.0, 0.05);
    let resume = light.solve().unwrap().mean_queue_length();
    let discard = CrashDiscardCluster::new(light)
        .unwrap()
        .solve()
        .unwrap()
        .mean_queue_length();
    assert!(discard <= resume);
    // With almost no queue, discarding barely matters.
    assert!((resume - discard) / resume < 0.05);

    let busy = base(0.0, 0.7);
    let resume = busy.solve().unwrap().mean_queue_length();
    let discard = CrashDiscardCluster::new(busy)
        .unwrap()
        .solve()
        .unwrap()
        .mean_queue_length();
    assert!(discard < resume);
}

#[test]
fn transient_analysis_consistent_with_stationary_model() {
    let m = base(0.2, 0.5);
    let ta = TransientAnalysis::new(&m).unwrap();
    // Long-run expected capacity equals the model capacity.
    assert!((ta.expected_capacity(50_000.0) - m.capacity()).abs() < 1e-4);
    // At t = 0 a fresh cluster has full capacity N·ν_p.
    assert!((ta.expected_capacity(0.0) - 4.0).abs() < 1e-12);
    // Interval availability is sandwiched between point availabilities.
    let t = 100.0;
    let avg = ta.interval_availability(t);
    assert!(avg <= 1.0 + 1e-12);
    assert!(avg >= m.availability() - 1e-6);
}

#[test]
fn up_time_distribution_is_second_order_effect() {
    // Paper Sect. 2.1: UP-time shape barely matters. Swap exponential UP
    // for Erlang-4 UP (same mean) and compare at a blow-up point.
    let erlang_up = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Erlang::with_mean(4, 90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(8, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.7)
        .build()
        .unwrap();
    let exp_up = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(8, 1.4, 0.2, 10.0).unwrap())
        .utilization(0.7)
        .build()
        .unwrap();
    let a = erlang_up.solve().unwrap().mean_queue_length();
    let b = exp_up.solve().unwrap().mean_queue_length();
    assert!((a / b - 1.0).abs() < 0.1, "erlang-up {a} vs exp-up {b}");
    // Meanwhile the repair shape at the same point is a >20x effect
    // (checked in paper_reproduction.rs).
}

#[test]
fn degradation_factor_controls_the_insensitive_region() {
    // Larger delta lifts nu_N and shrinks the blow-up exposure: at fixed
    // rho = 0.2 and T = 8 repair, delta = 0.4 should be insensitive while
    // delta = 0.0 is not.
    use performa::core::blowup::{self, BlowupRegion};
    let m_crash = base(0.0, 0.2);
    let m_soft = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.4)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(4, 1.4, 0.5, 10.0).unwrap())
        .utilization(0.2)
        .build()
        .unwrap();
    assert_ne!(blowup::region(&m_crash), BlowupRegion::Insensitive);
    assert_eq!(blowup::region(&m_soft), BlowupRegion::Insensitive);
}
