//! Cross-crate validation: the discrete-event simulators against the
//! matrix-geometric analytic solutions (the paper's Fig. 7/8 methodology,
//! at reduced run lengths suitable for CI).

use performa::core::{ClusterModel, LoadDependentCluster};
use performa::dist::{Erlang, Exponential, TruncatedPowerTail};
use performa::sim::{
    replicate, ClusterSim, ClusterSimConfig, ExactModelConfig, ExactModelSim, FailureStrategy,
    StopCriterion,
};

fn threads() -> usize {
    std::thread::available_parallelism().map_or(2, |n| n.get())
}

fn tpt_model(t: u32, rho: f64, delta: f64) -> ClusterModel {
    ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(delta)
        .up(Exponential::with_mean(90.0).unwrap())
        .down(TruncatedPowerTail::with_mean(t, 1.4, 0.5, 10.0).unwrap())
        .utilization(rho)
        .build()
        .unwrap()
}

fn exact_cfg(m: &ClusterModel, cycles: u64) -> ExactModelConfig {
    ExactModelConfig {
        servers: m.servers(),
        nu_p: m.peak_rate(),
        delta: m.degradation(),
        up: m.up().clone(),
        down: m.down().clone(),
        lambda: m.arrival_rate(),
        stop: StopCriterion::Cycles(cycles),
        warmup_time: 2_000.0,
    }
}

#[test]
fn exact_model_sim_matches_analytic_mean() {
    // theta = 0.5, T = 4: tame enough tails for quick convergence.
    for rho in [0.3, 0.6] {
        let m = tpt_model(4, rho, 0.2);
        let analytic = m.solve().unwrap().mean_queue_length();
        let sim = ExactModelSim::new(exact_cfg(&m, 40_000)).unwrap();
        let ci = replicate::replicated_ci(6, 10, threads(), |s| sim.run(s).mean_queue_length).unwrap();
        // Generous tolerance: CI half-width plus 10 % model slack.
        assert!(
            (ci.mean - analytic).abs() < ci.half_width + 0.15 * analytic,
            "rho={rho}: sim {} ± {} vs analytic {analytic}",
            ci.mean,
            ci.half_width
        );
    }
}

#[test]
fn exact_model_sim_matches_analytic_tail() {
    let m = tpt_model(4, 0.6, 0.2);
    let analytic = m.solve().unwrap();
    let sim = ExactModelSim::new(exact_cfg(&m, 60_000)).unwrap();
    let k = 20;
    let vals = replicate::run_replications(6, 50, threads(), |s| {
        sim.run(s).tail_probability(k)
    }).unwrap();
    let mean_tail: f64 = vals.iter().sum::<f64>() / vals.len() as f64;
    let expect = analytic.tail_probability(k);
    assert!(
        (mean_tail / expect - 1.0).abs() < 0.5,
        "sim tail {mean_tail} vs analytic {expect}"
    );
}

#[test]
fn physical_sim_matches_load_dependent_analytic_model() {
    // The Sect. 2.4 load-dependent analytic extension should match the
    // physical simulator much closer than the load-independent model at
    // low load.
    let m = tpt_model(3, 0.35, 0.2);
    let load_indep = m.solve().unwrap().mean_queue_length();
    let load_dep = LoadDependentCluster::new(m.clone())
        .solve()
        .unwrap()
        .mean_queue_length();

    let cfg = ClusterSimConfig {
        servers: 2,
        nu_p: 2.0,
        delta: 0.2,
        up: m.up().clone(),
        down: m.down().clone(),
        task: Exponential::with_mean(0.5).unwrap().into(),
        lambda: m.arrival_rate(),
        strategy: FailureStrategy::ResumeBack,
        stop: StopCriterion::Cycles(40_000),
        warmup_time: 2_000.0,
        resume_penalty: 0.0,
        detection_delay: None,
    };
    let sim = ClusterSim::new(cfg).unwrap();
    let ci = replicate::replicated_ci(6, 90, threads(), |s| sim.run(s).mean_queue_length).unwrap();

    let err_ld = (ci.mean - load_dep).abs();
    let err_li = (ci.mean - load_indep).abs();
    assert!(
        err_ld < err_li,
        "load-dep model should be closer: sim {} vs ld {load_dep} (err {err_ld}) vs li {load_indep} (err {err_li})",
        ci.mean
    );
    // A small residual gap remains by design: the analytic load-dependent
    // model lets queued work always occupy the *fastest* servers, while
    // the physical system never migrates a task off a degraded server.
    assert!(
        err_ld < ci.half_width + 0.10 * load_dep,
        "sim {} ± {} vs load-dependent analytic {load_dep}",
        ci.mean,
        ci.half_width
    );
}

#[test]
fn resume_strategy_with_exponential_tasks_matches_crash_analytic_model() {
    // For delta = 0 and exponential tasks, Resume is statistically the
    // analytic model (residual exponential = fresh exponential); at high
    // load the load-dependence correction is negligible.
    let m = tpt_model(3, 0.7, 0.0);
    let analytic = m.solve().unwrap().mean_queue_length();
    let cfg = ClusterSimConfig {
        servers: 2,
        nu_p: 2.0,
        delta: 0.0,
        up: m.up().clone(),
        down: m.down().clone(),
        task: Exponential::with_mean(0.5).unwrap().into(),
        lambda: m.arrival_rate(),
        strategy: FailureStrategy::ResumeBack,
        stop: StopCriterion::Cycles(40_000),
        warmup_time: 2_000.0,
        resume_penalty: 0.0,
        detection_delay: None,
    };
    let sim = ClusterSim::new(cfg).unwrap();
    let ci = replicate::replicated_ci(8, 400, threads(), |s| sim.run(s).mean_queue_length).unwrap();
    assert!(
        (ci.mean - analytic).abs() < ci.half_width + 0.2 * analytic,
        "sim {} ± {} vs analytic {analytic}",
        ci.mean,
        ci.half_width
    );
}

#[test]
fn erlang_task_times_preserve_blowup_qualitatively() {
    // Sect. 4's robustness claim, low-variance direction: Erlang-3 tasks.
    let m = tpt_model(4, 0.7, 0.0);
    let run = |rho: f64| {
        let m = tpt_model(4, rho, 0.0);
        let cfg = ClusterSimConfig {
            servers: 2,
            nu_p: 2.0,
            delta: 0.0,
            up: m.up().clone(),
            down: m.down().clone(),
            task: Erlang::with_mean(3, 0.5).unwrap().into(),
            lambda: m.arrival_rate(),
            strategy: FailureStrategy::ResumeBack,
            stop: StopCriterion::Cycles(25_000),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg).unwrap();
        let vals = replicate::run_replications(4, 700, threads(), |s| {
            sim.run(s).mean_queue_length
        }).unwrap();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    // Crossing from the insensitive-ish region into deep blow-up grows the
    // queue disproportionately: super-M/M/1 growth is the qualitative
    // signature that survives the task-time change.
    let low = run(0.15);
    let high = run(0.75);
    let mm1_ratio = (0.75 / 0.25) / (0.15 / 0.85);
    assert!(
        high / low > mm1_ratio,
        "low {low}, high {high}, mm1 ratio {mm1_ratio}"
    );
    drop(m);
}

#[test]
fn discard_strategy_never_exceeds_resume_queue() {
    let m = tpt_model(4, 0.65, 0.0);
    let run = |strategy: FailureStrategy| {
        let cfg = ClusterSimConfig {
            servers: 2,
            nu_p: 2.0,
            delta: 0.0,
            up: m.up().clone(),
            down: m.down().clone(),
            task: Exponential::with_mean(0.5).unwrap().into(),
            lambda: m.arrival_rate(),
            strategy,
            stop: StopCriterion::Cycles(30_000),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg).unwrap();
        let vals =
            replicate::run_replications(6, 1234, threads(), |s| sim.run(s).mean_queue_length).unwrap();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    let discard = run(FailureStrategy::Discard);
    let resume = run(FailureStrategy::ResumeBack);
    let restart = run(FailureStrategy::RestartBack);
    // Identical seeds, paired comparison: Discard <= Resume <= Restart,
    // with slack for Monte-Carlo noise.
    assert!(discard <= resume * 1.10, "discard {discard} vs resume {resume}");
    assert!(resume <= restart * 1.10, "resume {resume} vs restart {restart}");
}
