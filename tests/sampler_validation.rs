//! Kolmogorov–Smirnov validation of every random-variate generator
//! against its analytic distribution function.
//!
//! For n = 20 000 samples the 1 % critical value of the one-sample KS
//! statistic is ≈ 1.63/√n ≈ 0.0115; we assert a slightly looser 0.02 so
//! the fixed seeds stay robust across platforms while still catching any
//! real sampler defect (a wrong parameter shows up at ≥ 0.05).

use performa::dist::{
    Dist, DistributionFn, Erlang, Exponential, HyperExponential, LogNormal, Pareto,
    Sampler, TruncatedPowerTail, Uniform, Weibull,
};
use performa::sim::stats::ks_statistic;
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 20_000;
const KS_BOUND: f64 = 0.02;

fn ks_of(dist: &Dist, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut samples: Vec<f64> = (0..N).map(|_| dist.sample(&mut rng)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    ks_statistic(&samples, |x| dist.cdf(x))
}

#[test]
fn exponential_sampler() {
    let d: Dist = Exponential::new(1.7).unwrap().into();
    assert!(ks_of(&d, 1) < KS_BOUND, "KS = {}", ks_of(&d, 1));
}

#[test]
fn erlang_sampler() {
    let d: Dist = Erlang::new(4, 2.0).unwrap().into();
    assert!(ks_of(&d, 2) < KS_BOUND, "KS = {}", ks_of(&d, 2));
}

#[test]
fn hyperexponential_sampler() {
    let d: Dist = HyperExponential::new(&[0.25, 0.6, 0.15], &[0.2, 2.0, 20.0])
        .unwrap()
        .into();
    assert!(ks_of(&d, 3) < KS_BOUND, "KS = {}", ks_of(&d, 3));
}

#[test]
fn tpt_sampler() {
    let d: Dist = TruncatedPowerTail::with_mean(8, 1.4, 0.2, 10.0)
        .unwrap()
        .into();
    assert!(ks_of(&d, 4) < KS_BOUND, "KS = {}", ks_of(&d, 4));
}

#[test]
fn uniform_sampler() {
    let d: Dist = Uniform::new(2.0, 9.0).unwrap().into();
    assert!(ks_of(&d, 5) < KS_BOUND, "KS = {}", ks_of(&d, 5));
}

#[test]
fn pareto_sampler() {
    let d: Dist = Pareto::new(1.4, 3.0).unwrap().into();
    assert!(ks_of(&d, 6) < KS_BOUND, "KS = {}", ks_of(&d, 6));
}

#[test]
fn weibull_sampler() {
    let d: Dist = Weibull::new(0.7, 4.0).unwrap().into();
    assert!(ks_of(&d, 7) < KS_BOUND, "KS = {}", ks_of(&d, 7));
}

#[test]
fn lognormal_sampler() {
    // The analytic CDF uses an erf approximation good to ~1.5e-7, far
    // below the KS tolerance.
    let d: Dist = LogNormal::with_mean_scv(5.0, 3.0).unwrap().into();
    assert!(ks_of(&d, 8) < KS_BOUND, "KS = {}", ks_of(&d, 8));
}

#[test]
fn phase_type_path_sampler_matches_cdf() {
    // Sampling through the generic MatrixExp phase-process walker must
    // reproduce the same law as the closed-form mixture sampler.
    use performa::dist::Moments;
    let h = HyperExponential::new(&[0.3, 0.7], &[0.5, 5.0]).unwrap();
    let me = h.to_matrix_exp();
    let mut rng = StdRng::seed_from_u64(9);
    let mut samples: Vec<f64> = (0..N).map(|_| me.sample(&mut rng)).collect();
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let d = ks_statistic(&samples, |x| h.cdf(x));
    assert!(d < KS_BOUND, "KS = {d}");
    assert!((me.mean() - h.mean()).abs() < 1e-10);
}
