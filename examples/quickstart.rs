//! Quickstart: model a 2-node cluster with heavy-tailed repairs, solve it
//! exactly, and inspect the paper's key performability metrics.
//!
//! Run with: `cargo run --example quickstart --release`

use performa::core::{blowup, Axis, ClusterModel, Scenario, SweepOptions, SweepPlan};
use performa::dist::{Exponential, Moments, TruncatedPowerTail};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-node cluster: each node serves 2 tasks/s when healthy, degrades
    // to 20 % speed during repairs, fails about every 90 s and needs a
    // mean of 10 s to recover — but the recovery time is heavy-tailed
    // (truncated power tail over ~10 decades of time scales).
    let repair = TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?;
    println!(
        "repair distribution: mean {:.1}, scv {:.1} (high variance!)",
        repair.mean(),
        repair.scv()
    );

    let model = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0)?)
        .down(repair)
        .utilization(0.7)
        .build()?;

    println!("availability      A  = {:.3}", model.availability());
    println!("cluster capacity  ν̄ = {:.3} tasks/s", model.capacity());
    println!("arrival rate      λ  = {:.3} tasks/s", model.arrival_rate());

    // Where does this configuration sit relative to the blow-up points?
    let thresholds = blowup::utilization_thresholds(&model);
    println!("blow-up thresholds ρ_i = {thresholds:.2?}");
    println!("operating region: {:?}", blowup::region(&model));

    // Exact matrix-geometric solution of the M/MMPP/1 queue.
    let sol = model.solve()?;
    println!();
    println!("mean queue length          = {:.2}", sol.mean_queue_length());
    println!(
        "  ({:.0}x the M/M/1 queue at the same utilization!)",
        sol.normalized_mean_queue_length()
    );
    println!("P(system empty)            = {:.4}", sol.empty_probability());
    println!("P(Q >= 500)                = {:.3e}", sol.at_least_probability(500));
    println!(
        "P(task misses 30 s deadline) = {:.3e}",
        sol.delay_violation_probability(30.0)
    );

    // The same cluster with plain exponential repairs of the SAME mean:
    let light = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(90.0)?)
        .down(Exponential::with_mean(10.0)?)
        .utilization(0.7)
        .build()?
        .solve()?;
    println!();
    println!(
        "with exponential repairs of equal mean: E[Q] = {:.2} — the repair \
         *distribution*, not its mean, drives the damage",
        light.mean_queue_length()
    );

    // Whole figures are parameter sweeps. The sweep engine runs a grid
    // declaratively: parallel workers, a shared service-process cache,
    // per-point error capture, and results always in grid order.
    let grid = SweepPlan::grid(0.05, 0.95, 20).refine_near(&thresholds);
    let swept = Scenario::new(model, Axis::Rho(grid.into_values()))
        .compile()
        .with_options(SweepOptions::default().with_threads(4))
        .run_map(|sol| sol.normalized_mean_queue_length());
    println!();
    println!("rho sweep (every 6th point):");
    for p in swept.points().iter().step_by(6) {
        match &p.outcome {
            Ok(v) => println!("  rho = {:.3} -> {v:>8.1}x M/M/1", p.x),
            Err(e) => println!("  rho = {:.3} -> {e}", p.x),
        }
    }
    let stats = swept.stats();
    println!(
        "  ({} points, {} modulator-cache hits, {:.0} points/s)",
        stats.points,
        stats.cache_hits,
        stats.points_per_sec()
    );
    Ok(())
}
