//! The cluster ↔ teletraffic duality (paper Sect. 2.3): the same
//! mathematics describes a failing cluster's *service* process and an
//! N-Burst traffic source's *arrival* process. This example builds both
//! sides and shows the translated parameters and identical solutions.
//!
//! Run with: `cargo run --example telco_duality --release`

use performa::core::{telco, ClusterModel};
use performa::dist::{Exponential, TruncatedPowerTail};
use performa::qbd::Qbd;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A crash-fault cluster (δ = 0 — the regime where the duality is
    // exact).
    let cluster = ClusterModel::builder()
        .servers(2)
        .peak_rate(2.0)
        .degradation(0.0)
        .up(Exponential::with_mean(90.0)?)
        .down(TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0)?)
        .utilization(0.6)
        .build()?;

    println!("The paper's Sect. 2.3 dictionary, instantiated:");
    for row in telco::duality_table(&cluster) {
        println!("  {:<22} | {:<40} | {}", row.quantity, row.cluster, row.telco);
    }

    // Cluster view: M/MMPP/1 — Poisson tasks into a modulated server.
    let service = cluster.service_process()?;
    let cluster_sol = cluster.solve()?;

    // Telco view: the same MMPP, reinterpreted as an N-Burst *arrival*
    // stream. (The paper's MMPP/M/1 queue is a different queue; what is
    // dual is the modulated process itself, which we verify here.)
    let source = telco::dual_source(&cluster)?;
    let arrivals = source.aggregate(cluster.servers())?;
    assert!(service.generator().max_abs_diff(arrivals.generator()) < 1e-12);
    println!();
    println!(
        "dual check: the cluster's service MMPP and the N-Burst arrival \
         MMPP are the same {}-state process",
        service.dim()
    );
    println!(
        "  burstiness b = {:.3}  <->  availability A = {:.3}",
        source.burstiness(),
        cluster.availability()
    );

    // And the full queueing solution from the cluster side:
    println!();
    println!("cluster M/MMPP/1 solution at rho = {:.2}:", cluster.utilization());
    println!("  E[Q]        = {:.3}", cluster_sol.mean_queue_length());
    println!("  Pr(Q > 100) = {:.3e}", cluster_sol.tail_probability(100));

    // The raw QBD layer accepts the same blocks directly, which is how a
    // teletraffic user would assemble the MMPP/M/1 mirror image:
    let qbd = Qbd::m_mmpp1(
        cluster.arrival_rate(),
        service.generator(),
        service.rates(),
    )?;
    let sol = qbd.solve()?;
    assert!((sol.mean_queue_length() - cluster_sol.mean_queue_length()).abs() < 1e-10);
    println!("  (identical result via the raw QBD interface)");
    Ok(())
}
