//! Blow-up region explorer: maps the (utilization, availability) parameter
//! plane of a cluster into its qualitative operating regimes and shows how
//! abruptly the mean queue length jumps across region boundaries.
//!
//! Run with: `cargo run --example blowup_explorer --release`

use performa::core::{blowup, blowup::BlowupRegion, ClusterModel};
use performa::dist::{Exponential, TruncatedPowerTail};

fn model(n: usize, a: f64, lambda: f64) -> Result<ClusterModel, Box<dyn std::error::Error>> {
    // Fixed cycle length 100 as in the paper's Figure 5.
    let cycle = 100.0;
    Ok(ClusterModel::builder()
        .servers(n)
        .peak_rate(2.0)
        .degradation(0.2)
        .up(Exponential::with_mean(a * cycle)?)
        .down(TruncatedPowerTail::with_mean(7, 1.4, 0.2, (1.0 - a) * cycle)?)
        .arrival_rate(lambda)
        .build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 3;
    println!("Region map for a {n}-node cluster (x: load λ, y: availability A)");
    println!("legend: '.' insensitive, digits = blow-up region i, '!' unstable");
    println!();

    let lambdas: Vec<f64> = (1..=20).map(|i| i as f64 * 0.5).collect();
    print!("       ");
    for &l in &lambdas {
        print!("{}", if ((l * 2.0) as u32).is_multiple_of(4) { 'v' } else { ' ' });
    }
    println!("  (λ from {} to {})", lambdas[0], lambdas.last().unwrap());

    for ai in (1..=9).rev() {
        let a = ai as f64 / 10.0;
        print!("A={a:.1}  ");
        for &lambda in &lambdas {
            let m = model(n, a, lambda)?;
            let c = if lambda >= m.capacity() {
                '!'
            } else {
                match blowup::region(&m) {
                    BlowupRegion::Insensitive => '.',
                    BlowupRegion::Region(i) => char::from_digit(i as u32, 10).unwrap_or('?'),
                }
            };
            print!("{c}");
        }
        println!();
    }

    // Show the jump in mean queue length when crossing a boundary.
    println!();
    let a = 0.9;
    let probe = model(n, a, 1.0)?;
    let thresholds = blowup::utilization_thresholds(&probe);
    println!("At A = {a}, the ρ-thresholds are {thresholds:.3?}");
    println!();
    println!("{:>8} | {:>10} | {:>14} | region", "ρ", "E[Q]", "E[Q]/M/M/1");
    println!("{}", "-".repeat(52));
    for rho in [0.15, 0.25, 0.45, 0.55, 0.70, 0.80, 0.90] {
        let m = probe.with_utilization(rho)?;
        let sol = m.solve()?;
        println!(
            "{rho:>8.2} | {:>10.3} | {:>14.2} | {:?}",
            sol.mean_queue_length(),
            sol.normalized_mean_queue_length(),
            blowup::region(&m)
        );
    }
    Ok(())
}
