//! Comparing crash-failure handling strategies by simulation: Discard,
//! Resume and Restart (each with head/tail reinsertion), on a cluster
//! whose nodes crash (δ = 0) with heavy-tailed repair times.
//!
//! Run with: `cargo run --example failure_strategies --release`

use performa::dist::{Exponential, TruncatedPowerTail};
use performa::sim::{
    replicate, ClusterSim, ClusterSimConfig, FailureStrategy, StopCriterion,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lambda = 2.2; // moderate load on 2 crash-prone nodes
    let reps = 6;
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    println!("2 nodes, crash faults, TPT(T=5) repairs, λ = {lambda}, {reps} replications");
    println!();
    println!(
        "{:<14} | {:>12} | {:>12} | {:>10} | {:>10}",
        "strategy", "E[Q] (95% CI)", "E[S]", "completed", "discarded"
    );
    println!("{}", "-".repeat(72));

    for strategy in FailureStrategy::ALL {
        let cfg = ClusterSimConfig {
            servers: 2,
            nu_p: 2.0,
            delta: 0.0,
            up: Exponential::with_mean(90.0)?.into(),
            down: TruncatedPowerTail::with_mean(5, 1.4, 0.2, 10.0)?.into(),
            task: Exponential::with_mean(0.5)?.into(),
            lambda,
            strategy,
            stop: StopCriterion::Cycles(20_000),
            warmup_time: 2_000.0,
            resume_penalty: 0.0,
            detection_delay: None,
        };
        let sim = ClusterSim::new(cfg)?;
        let ci = replicate::replicated_ci(reps, 7_000, threads, |seed| {
            sim.run(seed).mean_queue_length
        }).expect("replications");
        // One extra run for the task-level counters.
        let detail = sim.run(99);
        println!(
            "{:<14} | {:>7.2} ±{:>4.2} | {:>12.3} | {:>10} | {:>10}",
            strategy.label(),
            ci.mean,
            ci.half_width,
            detail.mean_system_time,
            detail.completed_tasks,
            detail.discarded_tasks,
        );
    }

    println!();
    println!(
        "Discard keeps the queue shortest but loses tasks; Restart pays for \
         redone work; tail reinsertion beats head reinsertion (paper Sect. 4)."
    );
    Ok(())
}
