//! Capacity planning with delay SLOs: how many cluster nodes are needed to
//! keep the deadline-miss probability below a target, and how dramatically
//! the answer changes when repair times are heavy-tailed.
//!
//! The scenario the paper's introduction motivates: a mission-critical
//! service with a QoS bound, hosted on a small high-availability cluster.
//!
//! Run with: `cargo run --example capacity_planning --release`

use performa::core::ClusterModel;
use performa::dist::{fit, Dist, Exponential, TruncatedPowerTail};

/// Smallest cluster size (up to `max_n`) whose deadline-miss probability
/// stays below `target`, or `None` if even `max_n` nodes are not enough.
fn nodes_needed(
    repair: &Dist,
    lambda: f64,
    deadline: f64,
    target: f64,
    max_n: usize,
) -> Result<Option<usize>, Box<dyn std::error::Error>> {
    for n in 1..=max_n {
        let model = ClusterModel::builder()
            .servers(n)
            .peak_rate(2.0)
            .degradation(0.2)
            .up(Exponential::with_mean(90.0)?)
            .down(repair.clone())
            .arrival_rate(lambda)
            .build()?;
        if model.utilization() >= 0.999 {
            continue; // not even stable yet
        }
        let miss = model.solve()?.delay_violation_probability(deadline);
        if miss < target {
            return Ok(Some(n));
        }
    }
    Ok(None)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let deadline = 20.0; // seconds
    let target = 1e-3; // at most 0.1 % of tasks may miss it

    let exponential: Dist = Exponential::with_mean(10.0)?.into();
    // For larger clusters the T-phase TPT would blow up the lumped state
    // space (C(N+T, T) states), so do what the paper's Sect. 3.2 does:
    // replace it by the 3-moment-matched HYP-2 (2 phases per server).
    let tpt = TruncatedPowerTail::with_mean(9, 1.4, 0.2, 10.0)?;
    let heavy: Dist = fit::hyp2_matching(&tpt)?.into();

    println!("SLO: Pr(system time > {deadline} s) < {target:.0e}");
    println!();
    println!(
        "{:>10} | {:>22} | {:>22}",
        "load λ", "nodes (exp repair)", "nodes (heavy repair)"
    );
    println!("{}", "-".repeat(62));
    for lambda in [1.0, 2.0, 3.0, 4.0, 6.0, 8.0] {
        let exp_n = nodes_needed(&exponential, lambda, deadline, target, 12)?;
        let tpt_n = nodes_needed(&heavy, lambda, deadline, target, 12)?;
        let fmt = |x: Option<usize>| {
            x.map_or("> 12".to_string(), |n| n.to_string())
        };
        println!(
            "{:>10.1} | {:>22} | {:>22}",
            lambda,
            fmt(exp_n),
            fmt(tpt_n)
        );
    }
    println!();
    println!(
        "Heavy-tailed repairs inflate the required redundancy: the mean \
         repair time (10 s) is identical in both columns."
    );
    Ok(())
}
