//! `performa` — performability models for multi-server systems with
//! high-variance repair durations.
//!
//! This facade re-exports the whole workspace under one roof:
//!
//! * [`core`] — the cluster model, exact solutions, blow-up analysis,
//!   teletraffic duality, §2.4 extensions and transient performability,
//! * [`dist`] — matrix-exponential / phase-type distributions, the
//!   truncated power-tail family and 3-moment HYP-2 fitting,
//! * [`markov`] — CTMCs, MAP/MMPP processes, server aggregation and
//!   uniformization,
//! * [`qbd`] — the matrix-geometric QBD solver stack,
//! * [`store`] — the durable, crash-safe sweep-result store,
//! * [`sim`] — discrete-event simulators and simulation statistics,
//! * [`linalg`] — the dense linear-algebra kernel underneath it all.
//!
//! # Example
//!
//! ```
//! use performa::core::{blowup, ClusterModel};
//! use performa::dist::{Exponential, TruncatedPowerTail};
//!
//! let model = ClusterModel::builder()
//!     .servers(2)
//!     .peak_rate(2.0)
//!     .degradation(0.2)
//!     .up(Exponential::with_mean(90.0)?)
//!     .down(TruncatedPowerTail::with_mean(10, 1.4, 0.2, 10.0)?)
//!     .utilization(0.7)
//!     .build()?;
//!
//! // Where are the blow-up points, and which side of them are we on?
//! let thresholds = blowup::utilization_thresholds(&model);
//! assert!((thresholds[1] - 0.6087).abs() < 1e-3);
//! assert_eq!(blowup::region(&model), blowup::BlowupRegion::Region(1));
//!
//! // Exact solution of the M/MMPP/1 queue.
//! let sol = model.solve()?;
//! assert!(sol.normalized_mean_queue_length() > 30.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `README.md` for the architecture overview, `EXPERIMENTS.md` for
//! the paper-vs-measured record, `docs/THEORY.md` for the mathematics,
//! and `examples/` for runnable programs.

#![forbid(unsafe_code)]

pub use performa_core as core;
pub use performa_dist as dist;
pub use performa_linalg as linalg;
pub use performa_markov as markov;
pub use performa_qbd as qbd;
pub use performa_sim as sim;
pub use performa_store as store;
